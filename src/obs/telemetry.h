// Lightweight, thread-safe telemetry for the experiment pipeline: named
// counters and gauges, scoped monotonic-clock spans with parent/child
// nesting, and two sinks — a human-readable end-of-run summary tree
// (summary_text) and a Chrome trace_event JSON file (chrome://tracing or
// https://ui.perfetto.dev) written at process exit when DLPROJ_TRACE=<path>
// is set.
//
// Enablement:
//   * runtime: DLPROJ_TELEMETRY=1 turns collection on; DLPROJ_TRACE=<path>
//     turns collection on AND writes the trace file at exit.  set_enabled()
//     overrides either programmatically (benches, tests).
//   * compile time: -DDLPROJ_OBS_ENABLED=0 (CMake option -DDLPROJ_OBS=OFF)
//     compiles every DLP_OBS_* macro in the instrumented layers down to
//     nothing; the library itself stays linkable.
//
// Cost contract: when disabled at runtime the hot path is one relaxed
// atomic load and a predicted branch — no allocation, no lock, no clock
// read.  Instrumentation sites sit at unit boundaries (a 64-vector block, a
// parallel chunk, an ATPG target), never inside per-fault inner loops.
//
// Determinism contract: counter and gauge values produced by the
// deterministic layers (both fault simulators, ATPG) count the same unit
// boundaries the parallel engine's determinism contract protects, so they
// are bit-identical for any worker count.  Timing fields (span durations,
// pool idle time) and the engine's own diagnostics (parallel.steals,
// parallel.chunks) are inherently run-dependent and excluded.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dlp::obs {

namespace detail {
extern std::atomic<bool> g_enabled;
struct ThreadLog;
ThreadLog* thread_log();
std::int32_t open_span(ThreadLog* log, const char* name);
void close_span(ThreadLog* log, std::int32_t index);
void annotate_span(ThreadLog* log, std::int32_t index, std::string_view text);
}  // namespace detail

/// True while metric collection is on.  Inline relaxed load: this is the
/// whole cost of a disabled instrumentation site.
inline bool enabled() {
    return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Turns collection on/off for the whole process.  Safe to call from any
/// thread; sites already past their enabled() check finish their record.
void set_enabled(bool on);

/// Nanoseconds since the process's telemetry epoch (monotonic clock).
std::int64_t now_ns();

/// The trace output path configured via DLPROJ_TRACE ("" when unset).
const std::string& trace_path();

/// A named monotonic counter.  add() is lock-free and thread-safe; the
/// final value is the order-independent sum of all adds.
class Counter {
public:
    /// Use obs::counter(name) instead; public only so the registry can
    /// construct in place.
    explicit Counter(std::string name) : name_(std::move(name)) {}

    /// No-op (one relaxed load) when collection is disabled.
    void add(long long n = 1) {
        if (enabled()) value_.fetch_add(n, std::memory_order_relaxed);
    }
    long long value() const { return value_.load(std::memory_order_relaxed); }
    const std::string& name() const { return name_; }

    Counter(const Counter&) = delete;
    Counter& operator=(const Counter&) = delete;

private:
    friend void reset();
    std::string name_;
    std::atomic<long long> value_{0};
};

/// A named last-value-wins gauge (e.g. faults remaining, worker count).
class Gauge {
public:
    /// Use obs::gauge(name) instead; public only for in-place construction.
    explicit Gauge(std::string name) : name_(std::move(name)) {}

    void set(double v) {
        if (enabled())
            bits_.store(std::bit_cast<std::uint64_t>(v),
                        std::memory_order_relaxed);
    }
    double value() const {
        return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
    }
    const std::string& name() const { return name_; }

    Gauge(const Gauge&) = delete;
    Gauge& operator=(const Gauge&) = delete;

private:
    friend void reset();
    std::string name_;
    std::atomic<std::uint64_t> bits_{
        std::bit_cast<std::uint64_t>(0.0)};
};

/// Returns the process-wide counter/gauge registered under `name`, creating
/// it on first use.  References stay valid for the process lifetime.  The
/// lookup takes the registry mutex — resolve once (function-local static /
/// DLP_OBS_COUNTER) and reuse the reference; add()/set() never lock.
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);

/// RAII scoped span: records [construction, destruction) on the calling
/// thread's log, nested under the thread's innermost open span.  `name`
/// must have static storage duration (pass a string literal).  Spans on
/// different threads are independent (per-thread parent chains); a span
/// must be closed on the thread that opened it, which RAII guarantees.
/// Construction when disabled is a no-op and the span stays inert even if
/// collection is enabled later.
class Span {
public:
    explicit Span(const char* name) {
        if (enabled()) {
            log_ = detail::thread_log();
            index_ = detail::open_span(log_, name);
        }
    }
    ~Span() {
        if (log_) detail::close_span(log_, index_);
    }

    /// Attaches free-form text to the span (shown in both sinks).  Multiple
    /// annotations concatenate with "; ".
    void annotate(std::string_view text) {
        if (log_) detail::annotate_span(log_, index_, text);
    }

    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

private:
    detail::ThreadLog* log_ = nullptr;
    std::int32_t index_ = -1;
};

/// Annotates the calling thread's innermost open span (no-op when disabled
/// or when no span is open).  Used for Interruption records: a budget stop
/// annotates the stage span it fired inside.
void annotate_current(std::string_view text);

/// Names the calling thread in the trace sink ("main", "pool-3", ...).
/// Cheap and callable regardless of enablement; call once per thread.
void set_thread_name(std::string name);

/// One finished (or still-open) span as seen by a snapshot.
struct SpanInfo {
    std::string path;  ///< "/"-joined name chain from the thread's root
    std::string name;
    std::string note;     ///< annotations, "" if none
    int thread = 0;       ///< telemetry thread id (trace "tid")
    std::int64_t start_ns = 0;
    std::int64_t dur_ns = 0;
    bool open = false;  ///< still running when the snapshot was taken
};

// ---- sinks & snapshots ---------------------------------------------------
// Snapshots are safe to take at any time but are meant for quiescent
// moments (end of run): spans still open are reported with `open = true`
// and a duration up to "now".

std::vector<SpanInfo> spans_snapshot();
std::vector<std::pair<std::string, long long>> counters_snapshot();
std::vector<std::pair<std::string, double>> gauges_snapshot();

/// Human-readable summary: the span tree (call counts + total wall time,
/// merged across threads by path) followed by counters and gauges.
std::string summary_text();

/// The Chrome trace_event JSON document: one complete ("X") event per span
/// on its thread's track, thread-name metadata, and a final counter ("C")
/// sample per counter.  Load in chrome://tracing or ui.perfetto.dev.
std::string trace_json();

/// Writes trace_json() to `path`; false on I/O failure.
bool write_trace(const std::string& path);

/// End-of-run hook (also registered via atexit): writes the trace to the
/// DLPROJ_TRACE path if one is configured.
void flush();

/// Zeroes all counters/gauges and clears all span logs (registered names
/// and thread logs survive, so cached Counter&/Gauge& references stay
/// valid).  For tests and benches; do not call while spans are open.
void reset();

}  // namespace dlp::obs

// ---- compile-time kill switch --------------------------------------------
// Instrumented layers use these macros so -DDLPROJ_OBS_ENABLED=0 removes
// the sites entirely (arguments are not evaluated).  DLP_OBS_COUNTER /
// DLP_OBS_GAUGE declare a function-local static reference so the registry
// lookup happens once per site, not per hit.
#ifndef DLPROJ_OBS_ENABLED
#define DLPROJ_OBS_ENABLED 1
#endif

// `var` is deliberately a bare declarator name in these macros
// (a parenthesized declarator would change the declaration).
// NOLINTBEGIN(bugprone-macro-parentheses)
#if DLPROJ_OBS_ENABLED
#define DLP_OBS_SPAN(var, name) ::dlp::obs::Span var{name}
#define DLP_OBS_SPAN_NOTE(var, text) (var).annotate(text)
#define DLP_OBS_COUNTER(var, name) \
    static ::dlp::obs::Counter& var = ::dlp::obs::counter(name)
#define DLP_OBS_ADD(var, n) (var).add(n)
#define DLP_OBS_GAUGE(var, name) \
    static ::dlp::obs::Gauge& var = ::dlp::obs::gauge(name)
#define DLP_OBS_SET(var, v) (var).set(v)
#define DLP_OBS_ANNOTATE(text) ::dlp::obs::annotate_current(text)
#else
namespace dlp::obs {
struct NoopSpan {
    void annotate(std::string_view) {}
};
}  // namespace dlp::obs
#define DLP_OBS_SPAN(var, name) [[maybe_unused]] ::dlp::obs::NoopSpan var
#define DLP_OBS_SPAN_NOTE(var, text) ((void)(var))
#define DLP_OBS_COUNTER(var, name) [[maybe_unused]] constexpr int var = 0
#define DLP_OBS_ADD(var, n) ((void)(var))
#define DLP_OBS_GAUGE(var, name) [[maybe_unused]] constexpr int var = 0
#define DLP_OBS_SET(var, v) ((void)(var))
#define DLP_OBS_ANNOTATE(text) ((void)0)
#endif
// NOLINTEND(bugprone-macro-parentheses)
