// Standard-cell model: transistor-level netlist + symbolic lambda-grid
// layout, generated procedurally from a "diffusion strip" description.
//
// Every mask shape carries the local net it belongs to plus extraction
// metadata (`ShapeInfo`) that tells the layout fault extractor what an
// *open* (missing material) defect in that shape does electrically:
//  * TransistorDS - disconnects the tagged transistor's source/drain path
//  * GateFloat    - leaves the tagged transistor gate(s) floating
// Bridge (extra material) defects need no metadata: they are resolved from
// the two shapes' nets.  Gate-oxide pinholes use the per-transistor
// `GateRegion` rectangles.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cell/geom.h"
#include "netlist/circuit.h"

namespace dlp::cell {

/// A MOS transistor in cell-local net indices.
struct Transistor {
    bool is_pmos = false;
    int gate = -1;
    int source = -1;
    int drain = -1;
};

/// Channel region of one transistor (poly over diffusion), for gate-oxide
/// pinhole extraction.
struct GateRegion {
    Rect rect;
    int transistor = -1;
};

/// Extraction metadata attached to a shape (see file comment).
struct ShapeInfo {
    enum class OpenKind : std::uint8_t { None, TransistorDS, GateFloat };
    OpenKind open = OpenKind::None;
    int t1 = -1;  ///< affected local transistor
    int t2 = -1;  ///< second affected transistor (GateFloat on shared poly)
};

/// A mask shape inside a cell, in cell-local coordinates and nets.
struct LocalShape {
    Layer layer = Layer::Metal1;
    Rect rect;
    int net = -1;  ///< index into Cell::nets
    ShapeInfo info;
};

/// A cell pin: m1 landing pad position (pad center) in local coordinates.
struct Pin {
    std::string name;
    int net = -1;
    std::int64_t x = 0;
    std::int64_t y = 0;
};

/// One library cell.
struct Cell {
    std::string name;
    netlist::GateType function = netlist::GateType::Buf;
    int arity = 1;
    std::int64_t width = 0;

    /// Local nets; nets[0] = "GND", nets[1] = "VDD"; pin nets follow.
    std::vector<std::string> nets;
    std::vector<Transistor> transistors;
    std::vector<GateRegion> gate_regions;
    std::vector<Pin> pins;  ///< inputs in fanin order, then the output "Y"
    std::vector<LocalShape> shapes;

    static constexpr int kGnd = 0;
    static constexpr int kVdd = 1;

    int net_index(const std::string& name) const;
    const Pin& input_pin(int ordinal) const { return pins.at(static_cast<size_t>(ordinal)); }
    const Pin& output_pin() const { return pins.back(); }
};

/// One diffusion strip: gate columns shared by the N and P rows, with the
/// diffusion-segment nets left to right (size = gates.size() + 1 each).
struct Strip {
    std::vector<std::string> gates;
    std::vector<std::string> ndiff;
    std::vector<std::string> pdiff;
};

/// Generates a cell (netlist + layout) from strips.  `inputs` lists the pin
/// nets in fanin order; the output net must be named "Y".
/// Throws std::logic_error if the internal wiring cannot be placed (cell
/// design bug - all library cells are validated by tests).
Cell make_cell(std::string name, netlist::GateType function,
               std::vector<Strip> strips, std::vector<std::string> inputs,
               const Rules& rules = {});

}  // namespace dlp::cell
