// The standard-cell library: INV, BUF, NAND2-4, NOR2-4, AND2-4, OR2-4.
//
// XOR/XNOR are not cells; the techmap pass decomposes them into NAND2 trees
// before layout (see netlist/techmap.h), as typical 1990s standard-cell
// flows did.
#pragma once

#include "cell/cell.h"

namespace dlp::cell {

/// All library cells (built once, in a stable order).
const std::vector<Cell>& standard_library();

/// The cell implementing a gate function at a given arity.
/// Throws std::out_of_range if the (function, arity) pair is unsupported.
const Cell& library_cell(netlist::GateType function, int arity);

/// True if the library has a cell for this function/arity.
bool has_cell(netlist::GateType function, int arity);

}  // namespace dlp::cell
