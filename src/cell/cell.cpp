#include "cell/cell.h"

#include <algorithm>
#include <stdexcept>

namespace dlp::cell {

namespace {

// Fixed vertical floorplan of a cell (lambda units, cell_height = 40):
//   [0,4]   GND rail (metal1)        [36,40] VDD rail (metal1)
//   [8,13]  n-diffusion strip        [27,32] p-diffusion strip
//   [6,20]  poly column, lower half  [20,34] poly column, upper half
//   [15,18] metal1 track 0 (pin pads + straps)
//   [21,24] metal1 track 1 (straps)
constexpr std::int64_t kGndRailTop = 4;
constexpr std::int64_t kVddRailBot = 36;
constexpr std::int64_t kNDiffLo = 8, kNDiffHi = 13;
constexpr std::int64_t kPDiffLo = 27, kPDiffHi = 32;
constexpr std::int64_t kPolyLo = 6, kPolyMid = 20, kPolyHi = 34;
constexpr std::int64_t kTrack0Lo = 15, kTrack0Hi = 18;
constexpr std::int64_t kTrack1Lo = 21, kTrack1Hi = 24;
constexpr std::int64_t kSegWidth = 6;
constexpr std::int64_t kStripGap = 6;
constexpr std::int64_t kMargin = 2;

/// A wiring connection point: vertical jog column [cx-1,cx+2] covering
/// [y_lo, y_hi] before extension to the strap track.
struct Point {
    std::int64_t cx;
    std::int64_t y_lo;
    std::int64_t y_hi;
    bool is_n_row = false;
    bool is_p_row = false;
};

}  // namespace

int Cell::net_index(const std::string& name) const {
    for (size_t i = 0; i < nets.size(); ++i)
        if (nets[i] == name) return static_cast<int>(i);
    return -1;
}

Cell make_cell(std::string name, netlist::GateType function,
               std::vector<Strip> strips, std::vector<std::string> inputs,
               const Rules& rules) {
    Cell cell;
    cell.name = std::move(name);
    cell.function = function;
    cell.arity = static_cast<int>(inputs.size());

    cell.nets = {"GND", "VDD"};
    for (const auto& in : inputs) cell.nets.push_back(in);
    cell.nets.push_back("Y");
    const auto net_id = [&cell](const std::string& n) {
        const int existing = cell.net_index(n);
        if (existing >= 0) return existing;
        cell.nets.push_back(n);
        return static_cast<int>(cell.nets.size() - 1);
    };

    struct GateCol {
        int net;
        std::int64_t poly_x;  // left edge of the poly column
        int tn;               // N transistor index
        int tp;               // P transistor index
    };
    std::vector<GateCol> gate_cols;
    std::vector<std::vector<Point>> points;  // per net
    const auto add_point = [&](int net, Point p) {
        if (points.size() < cell.nets.size()) points.resize(cell.nets.size());
        points[static_cast<size_t>(net)].push_back(p);
    };

    const auto add_shape = [&cell](Layer layer, Rect r, int net,
                                   ShapeInfo info = {}) {
        if (!r.valid()) throw std::logic_error("invalid rect in cell gen");
        cell.shapes.push_back({layer, r, net, info});
    };

    // -------- diffusion strips, poly columns, transistors ----------------
    std::int64_t x = kMargin;
    struct DiffSeg {
        int net;
        std::int64_t cx;
        bool is_n;
        ShapeInfo info;
    };
    std::vector<DiffSeg> pending_contacts;  // non-power segs, filtered later

    for (const Strip& strip : strips) {
        const size_t g = strip.gates.size();
        if (strip.ndiff.size() != g + 1 || strip.pdiff.size() != g + 1)
            throw std::logic_error("strip diff lists must be gates+1 long");
        const std::int64_t sx = x;

        // Transistors first so diff segments can reference their neighbors.
        std::vector<int> tn(g);
        std::vector<int> tp(g);
        for (size_t i = 0; i < g; ++i) {
            tn[i] = static_cast<int>(cell.transistors.size());
            cell.transistors.push_back({false, net_id(strip.gates[i]),
                                        net_id(strip.ndiff[i]),
                                        net_id(strip.ndiff[i + 1])});
            tp[i] = static_cast<int>(cell.transistors.size());
            cell.transistors.push_back({true, net_id(strip.gates[i]),
                                        net_id(strip.pdiff[i]),
                                        net_id(strip.pdiff[i + 1])});
        }

        for (size_t i = 0; i <= g; ++i) {
            const std::int64_t seg_x =
                sx + static_cast<std::int64_t>(i) * rules.column_pitch;
            const std::int64_t cx = seg_x + kSegWidth / 2;
            const int left = i > 0 ? static_cast<int>(i - 1) : -1;
            const int right = i < g ? static_cast<int>(i) : -1;
            const auto seg_info = [&](bool is_n) {
                ShapeInfo info;
                info.open = ShapeInfo::OpenKind::TransistorDS;
                info.t1 = left >= 0 ? (is_n ? tn[static_cast<size_t>(left)]
                                            : tp[static_cast<size_t>(left)])
                                    : -1;
                info.t2 = right >= 0 ? (is_n ? tn[static_cast<size_t>(right)]
                                             : tp[static_cast<size_t>(right)])
                                     : -1;
                return info;
            };

            const int n_net = net_id(strip.ndiff[i]);
            add_shape(Layer::NDiff, {seg_x, kNDiffLo, seg_x + kSegWidth, kNDiffHi},
                      n_net, seg_info(true));
            if (n_net == Cell::kGnd) {
                add_shape(Layer::Metal1, {cx - 1, 0, cx + 2, kNDiffHi},
                          Cell::kGnd, seg_info(true));
                add_shape(Layer::Contact, {cx - 1, 9, cx + 1, 11}, Cell::kGnd,
                          seg_info(true));
            } else {
                pending_contacts.push_back({n_net, cx, true, seg_info(true)});
            }

            const int p_net = net_id(strip.pdiff[i]);
            add_shape(Layer::PDiff, {seg_x, kPDiffLo, seg_x + kSegWidth, kPDiffHi},
                      p_net, seg_info(false));
            if (p_net == Cell::kVdd) {
                add_shape(Layer::Metal1,
                          {cx - 1, kPDiffLo, cx + 2, rules.cell_height},
                          Cell::kVdd, seg_info(false));
                add_shape(Layer::Contact, {cx - 1, 29, cx + 1, 31}, Cell::kVdd,
                          seg_info(false));
            } else {
                pending_contacts.push_back({p_net, cx, false, seg_info(false)});
            }
        }

        for (size_t i = 0; i < g; ++i) {
            const std::int64_t poly_x =
                sx + kSegWidth + static_cast<std::int64_t>(i) * rules.column_pitch;
            const int gnet = net_id(strip.gates[i]);
            for (const GateCol& col : gate_cols)
                if (col.net == gnet)
                    throw std::logic_error(
                        "gate net used in more than one column: " +
                        strip.gates[i]);
            gate_cols.push_back({gnet, poly_x, tn[i], tp[i]});

            ShapeInfo low{ShapeInfo::OpenKind::GateFloat, tn[i], -1};
            ShapeInfo high{ShapeInfo::OpenKind::GateFloat, tp[i], -1};
            add_shape(Layer::Poly,
                      {poly_x, kPolyLo, poly_x + rules.poly_width, kPolyMid},
                      gnet, low);
            add_shape(Layer::Poly,
                      {poly_x, kPolyMid, poly_x + rules.poly_width, kPolyHi},
                      gnet, high);
            cell.gate_regions.push_back(
                {{poly_x, kNDiffLo, poly_x + rules.poly_width, kNDiffHi},
                 tn[i]});
            cell.gate_regions.push_back(
                {{poly_x, kPDiffLo, poly_x + rules.poly_width, kPDiffHi},
                 tp[i]});
        }

        x = sx + static_cast<std::int64_t>(g) * rules.column_pitch + kSegWidth +
            kStripGap;
    }
    cell.width = x - kStripGap + kMargin;

    // Power rails across the full cell.
    add_shape(Layer::Metal1, {0, 0, cell.width, kGndRailTop}, Cell::kGnd);
    add_shape(Layer::Metal1, {0, kVddRailBot, cell.width, rules.cell_height},
              Cell::kVdd);

    points.resize(cell.nets.size());

    // -------- gate pads (poly contact + metal1 pad on track 0) -----------
    for (const GateCol& col : gate_cols) {
        ShapeInfo info{ShapeInfo::OpenKind::GateFloat, col.tn, col.tp};
        add_shape(Layer::Metal1,
                  {col.poly_x, kTrack0Lo, col.poly_x + 3, kTrack0Hi}, col.net,
                  info);
        add_shape(Layer::Contact,
                  {col.poly_x, kTrack0Lo + 1, col.poly_x + 2, kTrack0Hi - 1},
                  col.net, info);
        add_point(col.net, {col.poly_x + 1, kTrack0Lo, kTrack0Hi});
    }

    // -------- diffusion contacts for nets that need wiring ----------------
    // A net needs wiring iff it has >= 2 connection candidates (diff groups
    // + gate pads) or is the output.  Count candidates first.
    std::vector<int> candidates(cell.nets.size(), 0);
    for (const auto& dc : pending_contacts)
        ++candidates[static_cast<size_t>(dc.net)];
    for (const GateCol& col : gate_cols)
        ++candidates[static_cast<size_t>(col.net)];
    const int y_net = cell.net_index("Y");
    if (y_net < 0) throw std::logic_error("cell has no output net Y");

    for (const auto& dc : pending_contacts) {
        if (candidates[static_cast<size_t>(dc.net)] < 2) continue;
        const std::int64_t lo = dc.is_n ? 9 : kPDiffLo + 1;
        const std::int64_t hi = dc.is_n ? 12 : kPDiffHi - 1;
        add_shape(Layer::Metal1, {dc.cx - 1, lo, dc.cx + 2, hi}, dc.net,
                  dc.info);
        add_shape(Layer::Contact, {dc.cx - 1, lo + 1, dc.cx + 1, hi - 1},
                  dc.net, dc.info);
        Point p{dc.cx, lo, hi};
        p.is_n_row = dc.is_n;
        p.is_p_row = !dc.is_n;
        add_point(dc.net, p);
    }

    // -------- intra-cell wiring (vertical columns or track straps) --------
    const auto m1_conflict = [&cell](const Rect& r, int net) {
        for (const LocalShape& s : cell.shapes)
            if (s.layer == Layer::Metal1 && s.net != net &&
                s.rect.intersects(r))
                return true;
        return false;
    };

    std::int64_t y_pin_x = -1;
    std::int64_t y_pin_y = -1;
    for (size_t net = 2; net < cell.nets.size(); ++net) {
        auto& pts = points[net];
        if (pts.size() < 2) continue;
        const int inet = static_cast<int>(net);

        // Which transistors does this net gate?  An open in the wiring then
        // floats those gates; otherwise it cuts the cell output.
        ShapeInfo wire_info;
        wire_info.open = ShapeInfo::OpenKind::None;
        for (const GateCol& col : gate_cols)
            if (col.net == inet) {
                wire_info.open = ShapeInfo::OpenKind::GateFloat;
                wire_info.t1 = col.tn;
                wire_info.t2 = col.tp;
            }
        if (wire_info.open == ShapeInfo::OpenKind::None)
            wire_info.open = ShapeInfo::OpenKind::TransistorDS;  // refined below
        if (inet == y_net) wire_info.open = ShapeInfo::OpenKind::None;
        // Output wiring opens are handled as "output open" by tagging with
        // TransistorDS on the transistor whose drain is Y (first found).
        if (inet == y_net) {
            for (size_t t = 0; t < cell.transistors.size(); ++t)
                if (cell.transistors[t].drain == y_net ||
                    cell.transistors[t].source == y_net) {
                    wire_info.open = ShapeInfo::OpenKind::TransistorDS;
                    wire_info.t1 = static_cast<int>(t);
                    break;
                }
        } else if (wire_info.open == ShapeInfo::OpenKind::TransistorDS) {
            for (size_t t = 0; t < cell.transistors.size(); ++t)
                if (cell.transistors[t].drain == inet ||
                    cell.transistors[t].source == inet) {
                    wire_info.t1 = static_cast<int>(t);
                    break;
                }
        }

        // Special case: two vertically aligned diff points -> one column.
        if (pts.size() == 2 && pts[0].cx == pts[1].cx &&
            ((pts[0].is_n_row && pts[1].is_p_row) ||
             (pts[0].is_p_row && pts[1].is_n_row))) {
            const Rect col{pts[0].cx - 1, 9, pts[0].cx + 2, kPDiffHi - 1};
            if (m1_conflict(col, inet))
                throw std::logic_error(cell.name + ": column conflict");
            add_shape(Layer::Metal1, col, inet, wire_info);
            if (inet == y_net) {
                y_pin_x = pts[0].cx;
                y_pin_y = kPolyMid;
            }
            continue;
        }

        bool placed = false;
        for (const auto [track_lo, track_hi] :
             {std::pair{kTrack0Lo, kTrack0Hi}, std::pair{kTrack1Lo, kTrack1Hi}}) {
            std::vector<Rect> rects;
            std::int64_t min_x = pts[0].cx;
            std::int64_t max_x = pts[0].cx;
            for (const Point& p : pts) {
                min_x = std::min(min_x, p.cx);
                max_x = std::max(max_x, p.cx);
                const std::int64_t jy1 = std::min(p.y_lo, track_lo);
                const std::int64_t jy2 = std::max(p.y_hi, track_hi);
                rects.push_back({p.cx - 1, jy1, p.cx + 2, jy2});
            }
            rects.push_back({min_x - 1, track_lo, max_x + 2, track_hi});
            bool ok = true;
            for (const Rect& r : rects)
                if (m1_conflict(r, inet)) {
                    ok = false;
                    break;
                }
            if (!ok) continue;
            for (const Rect& r : rects)
                add_shape(Layer::Metal1, r, inet, wire_info);
            if (inet == y_net) {
                // Output pin at the first jog column: jog columns sit at
                // diffusion-segment centers, which never coincide with an
                // input pad column, keeping all riser x positions distinct.
                y_pin_x = pts[0].cx;
                y_pin_y = (track_lo + track_hi) / 2;
            }
            placed = true;
            break;
        }
        if (!placed)
            throw std::logic_error(cell.name + ": no track for net " +
                                   cell.nets[net]);
    }

    // -------- pins ---------------------------------------------------------
    for (const auto& in : inputs) {
        const int inet = cell.net_index(in);
        const GateCol* col = nullptr;
        for (const GateCol& gc : gate_cols)
            if (gc.net == inet) col = &gc;
        if (!col) throw std::logic_error("input " + in + " gates nothing");
        cell.pins.push_back({in, inet, col->poly_x + 1, (kTrack0Lo + kTrack0Hi) / 2});
    }
    if (y_pin_x < 0) throw std::logic_error("output net Y was never wired");
    cell.pins.push_back({"Y", y_net, y_pin_x, y_pin_y});

    return cell;
}

}  // namespace dlp::cell
