#include "cell/geom.h"

namespace dlp::cell {

const char* layer_name(Layer layer) {
    switch (layer) {
        case Layer::NDiff: return "ndiff";
        case Layer::PDiff: return "pdiff";
        case Layer::Poly: return "poly";
        case Layer::Contact: return "contact";
        case Layer::Metal1: return "metal1";
        case Layer::Via: return "via";
        case Layer::Metal2: return "metal2";
    }
    return "?";
}

std::string net_ref_name(const NetRef& ref) {
    if (ref.is_power()) return ref.index ? "VDD" : "GND";
    if (ref.is_circuit()) return "net" + std::to_string(ref.index);
    return "i" + std::to_string(ref.instance) + ".n" +
           std::to_string(ref.index);
}

}  // namespace dlp::cell
