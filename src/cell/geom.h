// Manhattan geometry primitives on the lambda grid.
//
// All coordinates are integer multiples of lambda (half the minimum feature
// size, MOSIS SCMOS style).  The design rules used by the cell generator and
// the router are collected in `Rules` so the extractor and the DRC checks
// share one source of truth.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dlp::cell {

/// Mask layers of the simulated 2-metal CMOS process.
enum class Layer : std::uint8_t {
    NDiff,    ///< n+ diffusion
    PDiff,    ///< p+ diffusion
    Poly,     ///< polysilicon (gates and short straps)
    Contact,  ///< diff/poly to metal1 cut
    Metal1,
    Via,      ///< metal1 to metal2 cut
    Metal2,
};
constexpr int kLayerCount = 7;

const char* layer_name(Layer layer);

/// Axis-aligned rectangle, half-open is NOT used: [x1,x2] x [y1,y2], x1<x2.
struct Rect {
    std::int64_t x1 = 0;
    std::int64_t y1 = 0;
    std::int64_t x2 = 0;
    std::int64_t y2 = 0;

    std::int64_t width() const { return x2 - x1; }
    std::int64_t height() const { return y2 - y1; }
    std::int64_t area() const { return width() * height(); }
    bool valid() const { return x2 > x1 && y2 > y1; }
    bool intersects(const Rect& o) const {
        return x1 < o.x2 && o.x1 < x2 && y1 < o.y2 && o.y1 < y2;
    }
    Rect translated(std::int64_t dx, std::int64_t dy) const {
        return {x1 + dx, y1 + dy, x2 + dx, y2 + dy};
    }
    bool operator==(const Rect&) const = default;
};

/// Lambda design rules (SCMOS-like) shared by cells, router and extractor.
struct Rules {
    std::int64_t diff_width = 5;
    std::int64_t poly_width = 2;
    std::int64_t poly_space = 3;
    std::int64_t m1_width = 3;
    std::int64_t m1_space = 3;
    std::int64_t m2_width = 3;
    std::int64_t m2_space = 4;
    std::int64_t contact_size = 2;
    std::int64_t via_size = 2;
    std::int64_t cell_height = 40;   ///< standard-cell row height
    std::int64_t column_pitch = 8;   ///< transistor column pitch inside cells
    std::int64_t m1_pitch() const { return m1_width + m1_space; }
    std::int64_t m2_pitch() const { return m2_width + m2_space; }
};

/// Reference to the electrical net a shape belongs to.
///  * instance == kRouting (-1): a top-level circuit net; index = NetId.
///  * instance == kPower   (-2): index 0 = GND, 1 = VDD.
///  * instance >= 0: internal net `index` of cell instance `instance`
///    (indexes into Cell::nets of that instance's cell).
struct NetRef {
    std::int32_t instance = -1;
    std::int32_t index = 0;

    static constexpr std::int32_t kRouting = -1;
    static constexpr std::int32_t kPower = -2;
    static constexpr std::int32_t kNone = -3;

    static NetRef circuit(std::uint32_t net) {
        return {kRouting, static_cast<std::int32_t>(net)};
    }
    static NetRef power(bool vdd) { return {kPower, vdd ? 1 : 0}; }
    static NetRef internal(std::int32_t inst, std::int32_t local) {
        return {inst, local};
    }
    static NetRef none() { return {kNone, 0}; }
    bool is_none() const { return instance == kNone; }
    bool is_circuit() const { return instance == kRouting; }
    bool is_power() const { return instance == kPower; }
    bool is_internal() const { return instance >= 0; }
    bool operator==(const NetRef&) const = default;
    auto operator<=>(const NetRef&) const = default;
};

std::string net_ref_name(const NetRef& ref);

/// One labeled mask shape.
struct Shape {
    Layer layer = Layer::Metal1;
    Rect rect;
    NetRef net;
};

}  // namespace dlp::cell
