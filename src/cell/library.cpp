#include "cell/library.h"

#include <stdexcept>

namespace dlp::cell {

namespace {

using netlist::GateType;

std::vector<Cell> build_library() {
    std::vector<Cell> cells;

    cells.push_back(make_cell("INV", GateType::Not,
                              {{{"A"}, {"GND", "Y"}, {"VDD", "Y"}}}, {"A"}));
    cells.push_back(make_cell(
        "BUF", GateType::Buf,
        {{{"A"}, {"GND", "W"}, {"VDD", "W"}},
         {{"W"}, {"GND", "Y"}, {"VDD", "Y"}}},
        {"A"}));

    cells.push_back(make_cell(
        "NAND2", GateType::Nand,
        {{{"A", "B"}, {"GND", "x1", "Y"}, {"VDD", "Y", "VDD"}}}, {"A", "B"}));
    cells.push_back(make_cell("NAND3", GateType::Nand,
                              {{{"A", "B", "C"},
                                {"GND", "x1", "x2", "Y"},
                                {"VDD", "Y", "VDD", "Y"}}},
                              {"A", "B", "C"}));
    cells.push_back(make_cell("NAND4", GateType::Nand,
                              {{{"A", "B", "C", "D"},
                                {"GND", "x1", "x2", "x3", "Y"},
                                {"VDD", "Y", "VDD", "Y", "VDD"}}},
                              {"A", "B", "C", "D"}));

    cells.push_back(make_cell(
        "NOR2", GateType::Nor,
        {{{"A", "B"}, {"GND", "Y", "GND"}, {"VDD", "x1", "Y"}}}, {"A", "B"}));
    cells.push_back(make_cell("NOR3", GateType::Nor,
                              {{{"A", "B", "C"},
                                {"GND", "Y", "GND", "Y"},
                                {"VDD", "x1", "x2", "Y"}}},
                              {"A", "B", "C"}));
    cells.push_back(make_cell("NOR4", GateType::Nor,
                              {{{"A", "B", "C", "D"},
                                {"GND", "Y", "GND", "Y", "GND"},
                                {"VDD", "x1", "x2", "x3", "Y"}}},
                              {"A", "B", "C", "D"}));

    cells.push_back(make_cell(
        "AND2", GateType::And,
        {{{"A", "B"}, {"GND", "x1", "W"}, {"VDD", "W", "VDD"}},
         {{"W"}, {"GND", "Y"}, {"VDD", "Y"}}},
        {"A", "B"}));
    cells.push_back(make_cell(
        "AND3", GateType::And,
        {{{"A", "B", "C"}, {"GND", "x1", "x2", "W"}, {"VDD", "W", "VDD", "W"}},
         {{"W"}, {"GND", "Y"}, {"VDD", "Y"}}},
        {"A", "B", "C"}));
    cells.push_back(make_cell("AND4", GateType::And,
                              {{{"A", "B", "C", "D"},
                                {"GND", "x1", "x2", "x3", "W"},
                                {"VDD", "W", "VDD", "W", "VDD"}},
                               {{"W"}, {"GND", "Y"}, {"VDD", "Y"}}},
                              {"A", "B", "C", "D"}));

    cells.push_back(make_cell(
        "OR2", GateType::Or,
        {{{"A", "B"}, {"GND", "W", "GND"}, {"VDD", "x1", "W"}},
         {{"W"}, {"GND", "Y"}, {"VDD", "Y"}}},
        {"A", "B"}));
    cells.push_back(make_cell(
        "OR3", GateType::Or,
        {{{"A", "B", "C"}, {"GND", "W", "GND", "W"}, {"VDD", "x1", "x2", "W"}},
         {{"W"}, {"GND", "Y"}, {"VDD", "Y"}}},
        {"A", "B", "C"}));
    cells.push_back(make_cell("OR4", GateType::Or,
                              {{{"A", "B", "C", "D"},
                                {"GND", "W", "GND", "W", "GND"},
                                {"VDD", "x1", "x2", "x3", "W"}},
                               {{"W"}, {"GND", "Y"}, {"VDD", "Y"}}},
                              {"A", "B", "C", "D"}));

    return cells;
}

}  // namespace

const std::vector<Cell>& standard_library() {
    static const std::vector<Cell> cells = build_library();
    return cells;
}

const Cell& library_cell(GateType function, int arity) {
    for (const Cell& c : standard_library())
        if (c.function == function && c.arity == arity) return c;
    throw std::out_of_range(std::string("no cell for ") +
                            netlist::gate_type_name(function) + "/" +
                            std::to_string(arity));
}

bool has_cell(GateType function, int arity) {
    for (const Cell& c : standard_library())
        if (c.function == function && c.arity == arity) return true;
    return false;
}

}  // namespace dlp::cell
