#include "model/ndetect.h"

#include <algorithm>

namespace dlp::model {

NDetectProfile ndetect_profile(std::span<const int> counts, int target,
                               std::span<const std::uint8_t> exclude) {
    NDetectProfile p;
    p.target = std::max(1, target);
    p.histogram.assign(static_cast<std::size_t>(p.target) + 1, 0);

    long long sum = 0;  // of clamped counts, so it feeds both means
    std::size_t at_target = 0;
    int min_count = -1;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        if (i < exclude.size() && exclude[i]) continue;
        const int c = std::clamp(counts[i], 0, p.target);
        ++p.faults;
        ++p.histogram[static_cast<std::size_t>(c)];
        sum += c;
        if (c >= p.target) ++at_target;
        min_count = min_count < 0 ? c : std::min(min_count, c);
    }
    if (p.faults == 0) return p;

    const double n = static_cast<double>(p.faults);
    p.min_detections = std::max(0, min_count);
    p.mean_detections = static_cast<double>(sum) / n;
    p.worst_case_coverage = static_cast<double>(at_target) / n;
    p.avg_case_coverage =
        static_cast<double>(sum) / (n * static_cast<double>(p.target));
    return p;
}

}  // namespace dlp::model
