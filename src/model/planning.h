// Test planning on top of the proposed model: given a characterized
// process (Y, R, theta_max) and the stuck-at susceptibility s_T, answer the
// production questions the paper's examples pose:
//   * how many random vectors for a target defect level?
//   * what DL does a planned test length buy?
//   * what residual DL does the detection method leave, and is the target
//     reachable at all without better detection (IDDQ/delay)?
//
// Also provides the clustered-defect generalization of eq. (3): with
// negative-binomial (Stapper) defect statistics instead of Poisson,
//   Y     = (1 + lambda/alpha)^(-alpha)
//   DL(theta) = 1 - [(1 + (1-theta)*lambda/alpha) / (1 + lambda/alpha)]^(-alpha) ... inverted:
// shipped-part defect probability accounting for defect clustering, which
// reduces DL at equal yield (defects pile onto already-dead dies).
#pragma once

#include "model/coverage_laws.h"
#include "model/dl_models.h"

namespace dlp::model {

/// A characterized process + test method.
struct TestPlanInputs {
    double yield = 0.75;
    double r = 1.9;               ///< susceptibility ratio, eq (10)
    double theta_max = 0.96;      ///< detection-method ceiling
    double s_stuck_at = 20.0;     ///< stuck-at susceptibility (eq 7), > 1
};

struct TestPlan {
    bool reachable = false;   ///< target DL above the residual floor?
    double residual_dl = 0.0; ///< 1 - Y^(1-theta_max)
    double required_coverage = 0.0;  ///< stuck-at T needed (if reachable)
    double vectors = 0.0;            ///< random test length for that T
};

/// Plans the random test length for a target defect level.
TestPlan plan_test_length(const TestPlanInputs& inputs, double dl_target);

/// Defect level delivered by a planned random test length.
double dl_at_test_length(const TestPlanInputs& inputs, double vectors);

/// Clustered-defect (negative binomial, Stapper) defect level as a
/// function of weighted realistic coverage theta:
///   DL = 1 - Y_escape / Y_total-ish; concretely, with mean defect count
///   lambda and clustering alpha, a shipped die passed a test covering
///   theta of the defect weight, so
///   DL = 1 - (1 + (1-theta)lambda/alpha)^(-alpha) / ... (see .cpp)
/// As alpha -> inf this reduces to eq. (3): 1 - Y^(1-theta).
double clustered_dl(double lambda, double alpha, double theta);

/// Clustered required coverage: smallest theta with clustered_dl <= target.
/// Throws std::domain_error if unreachable even at theta = 1 (never, since
/// clustered_dl(.,.,1) == 0).
double clustered_required_theta(double lambda, double alpha,
                                double dl_target);

}  // namespace dlp::model
