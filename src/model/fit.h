// Generic derivative-free minimization (Nelder-Mead) and curve-fitting
// front-ends for the paper's models:
//  * fit (R, theta_max) of eq (11) to measured (T, DL) fallout points,
//  * fit the Agrawal multiplicity parameter n of eq (2) to the same points.
#pragma once

#include <functional>
#include <span>
#include <vector>

namespace dlp::model {

/// Options for the Nelder-Mead simplex minimizer.
struct MinimizeOptions {
    int max_iterations = 2000;
    double tolerance = 1e-12;    ///< stop when the simplex f-spread drops below
    double initial_step = 0.25;  ///< relative initial simplex edge length
};

/// Result of a minimization.
struct MinimizeResult {
    std::vector<double> x;   ///< best parameter vector found
    double value = 0.0;      ///< objective at x
    int iterations = 0;      ///< iterations used
    bool converged = false;  ///< tolerance reached before max_iterations
};

/// Minimizes an N-dimensional objective with the Nelder-Mead simplex method.
MinimizeResult minimize(
    const std::function<double(std::span<const double>)>& objective,
    std::span<const double> initial, const MinimizeOptions& options = {});

/// A measured fallout point: defect level observed at stuck-at coverage T.
struct FalloutPoint {
    double coverage = 0.0;      ///< stuck-at coverage T
    double defect_level = 0.0;  ///< observed DL fraction
};

/// Fitted parameters of the proposed model (yield is known, not fitted).
struct ProposedFit {
    double r = 1.0;
    double theta_max = 1.0;
    double rms_error = 0.0;  ///< RMS of log-DL residuals at the fit
};

/// Least-squares fit of eq (11) to fallout points with known yield, in
/// log-DL space (defect levels span orders of magnitude, and the residual
/// floor near T = 1 must carry weight in the fit).
/// R is constrained to [1, 16] and theta_max to (0, 1].
ProposedFit fit_proposed_model(double yield,
                               std::span<const FalloutPoint> points);

/// Fitted Agrawal model parameter (eq 2), n constrained to [1, 64].
struct AgrawalFit {
    double n_avg = 1.0;
    double rms_error = 0.0;
};

/// Least-squares fit of eq (2) to fallout points with known yield.
AgrawalFit fit_agrawal_model(double yield,
                             std::span<const FalloutPoint> points);

/// Fitted parameters of the clustered (negative-binomial) generalization
/// of eq (11): (R, theta_max) as in ProposedFit plus the Stapper
/// clustering shape alpha, fitted jointly.
struct ClusteredFit {
    double r = 1.0;
    double theta_max = 1.0;
    double alpha = 0.0;      ///< fitted clustering shape (larger = less
                             ///< clustered; capped at 1e6 ~ Poisson)
    double rms_error = 0.0;  ///< RMS of log-DL residuals at the fit
    double count_nll = 0.0;  ///< negbin NLL per die of `die_counts` at the
                             ///< fit (0 when no counts were given)
};

/// Maximum-likelihood negative-binomial dispersion from observed per-die
/// defect counts (gamma-Poisson mixture; the mean is estimated as the
/// sample mean).  The result is clamped to [1e-3, 1e6]; samples with no
/// overdispersion land on the upper clamp (the Poisson limit).
/// Throws std::invalid_argument on an empty or all-zero sample.
double fit_negbin_alpha(std::span<const long> counts);

/// Joint fit of the clustered eq (11): R and theta_max against the
/// fallout points (log-DL least squares, as fit_proposed_model) and alpha
/// against BOTH the points and — when non-empty — the observed per-die
/// defect counts through the negative-binomial likelihood (a penalized
/// joint objective: mean squared log-DL residual + NLL/die).  `lambda` is
/// the known mean defect rate (= -ln Y under the paper's weight scaling).
/// R in [1, 16], theta_max in (0, 1], alpha in [1e-2, 1e6].
ClusteredFit fit_clustered_model(double lambda,
                                 std::span<const FalloutPoint> points,
                                 std::span<const long> die_counts = {});

}  // namespace dlp::model
