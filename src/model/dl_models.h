// Defect-level models relating yield Y, fault coverage T and defect level DL.
//
// Implements, with the paper's equation numbers (Sousa et al., DATE 1994):
//   eq (1)  Williams-Brown            DL = 1 - Y^(1-T)
//   eq (2)  Agrawal et al.            DL with Poisson fault multiplicity n
//   eq (3)  weighted realistic DL     DL = 1 - Y^(1-theta)
//   eq (9)  theta(T)  = theta_max * (1 - (1-T)^R)
//   eq (11) proposed  DL(T) = 1 - Y^(1 - theta_max*(1-(1-T)^R))
//
// Coverages and defect levels are fractions in [0,1]; ppm helpers provided.
#pragma once

#include <stdexcept>

namespace dlp::model {

/// Converts a defect-level fraction to parts-per-million.
constexpr double to_ppm(double dl) { return dl * 1e6; }
/// Converts parts-per-million to a defect-level fraction.
constexpr double from_ppm(double ppm) { return ppm * 1e-6; }

/// Williams-Brown defect level, eq (1): DL = 1 - Y^(1-T).
/// @param yield    process yield Y in (0,1]
/// @param coverage single stuck-at fault coverage T in [0,1]
double williams_brown_dl(double yield, double coverage);

/// Inverse of eq (1): the stuck-at coverage required to reach a target DL.
/// Returns a value in [0,1]; throws std::domain_error if the target is
/// unreachable (dl <= 0 requires T = 1 exactly; dl >= 1-Y requires T = 0).
double williams_brown_required_coverage(double yield, double dl);

/// Agrawal et al. defect level, eq (2), parameterized by the average number
/// of faults on a faulty chip, n (>= 1):
///   DL = (1-T)(1-Y)e^{-(n-1)T} / (Y + (1-T)(1-Y)e^{-(n-1)T})
double agrawal_dl(double yield, double coverage, double n_avg);

/// Weighted realistic defect level, eq (3): DL = 1 - Y^(1-theta), where
/// theta is the *weighted* realistic fault coverage of eq (6).
double weighted_dl(double yield, double theta);

/// The paper's proposed model, eq (11).
///
/// theta_max in (0,1] is the maximum weighted realistic coverage reachable
/// with the given test set and detection technique; R >= 1 is the
/// susceptibility ratio of eq (10).  R = 1 and theta_max = 1 reduce exactly
/// to Williams-Brown.
struct ProposedModel {
    double yield = 1.0;      ///< process yield Y
    double r = 1.0;          ///< susceptibility ratio R, eq (10)
    double theta_max = 1.0;  ///< asymptotic weighted coverage

    /// Realistic weighted coverage as a function of stuck-at coverage, eq (9).
    double theta_of_coverage(double coverage) const;

    /// Defect level as a function of stuck-at coverage, eq (11).
    double dl(double coverage) const;

    /// Residual defect level 1 - Y^(1-theta_max): the floor that remains at
    /// T = 1 because the detection technique cannot cover all faults.
    double residual_dl() const;

    /// Stuck-at coverage required for a target defect level.
    /// Throws std::domain_error if dl_target < residual_dl() (unreachable).
    double required_coverage(double dl_target) const;
};

}  // namespace dlp::model
