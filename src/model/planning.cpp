#include "model/planning.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace dlp::model {

TestPlan plan_test_length(const TestPlanInputs& inputs, double dl_target) {
    const ProposedModel m{inputs.yield, inputs.r, inputs.theta_max};
    TestPlan plan;
    plan.residual_dl = m.residual_dl();
    if (dl_target < plan.residual_dl) {
        plan.reachable = false;  // needs IDDQ/delay testing, not more vectors
        return plan;
    }
    plan.reachable = true;
    plan.required_coverage = m.required_coverage(dl_target);
    const CoverageLaw law{inputs.s_stuck_at, 1.0};
    plan.vectors = plan.required_coverage >= 1.0
                       ? std::numeric_limits<double>::infinity()
                       : law.vectors_for(plan.required_coverage);
    return plan;
}

double dl_at_test_length(const TestPlanInputs& inputs, double vectors) {
    const CoverageLaw law{inputs.s_stuck_at, 1.0};
    const ProposedModel m{inputs.yield, inputs.r, inputs.theta_max};
    return m.dl(law.coverage(vectors));
}

double clustered_dl(double lambda, double alpha, double theta) {
    if (lambda < 0.0) throw std::domain_error("lambda must be >= 0");
    if (!(alpha > 0.0)) throw std::domain_error("alpha must be > 0");
    if (theta < 0.0 || theta > 1.0)
        throw std::domain_error("theta must be in [0,1]");
    // Gamma-mixed Poisson: a die's defect rate L ~ Gamma(alpha, lambda/alpha);
    // detected defects thin with probability theta.
    //   P(pass)        = E[e^{-theta L}] = (1 + theta*lambda/alpha)^-alpha
    //   P(pass, clean) = E[e^{-L}]       = (1 + lambda/alpha)^-alpha  (= Y)
    //   DL = 1 - P(clean | pass)
    const double num = 1.0 + theta * lambda / alpha;
    const double den = 1.0 + lambda / alpha;
    return 1.0 - std::pow(num / den, alpha);
}

double clustered_required_theta(double lambda, double alpha,
                                double dl_target) {
    if (dl_target < 0.0 || dl_target >= 1.0)
        throw std::domain_error("dl_target must be in [0,1)");
    if (lambda == 0.0) return 0.0;  // perfect yield
    // Invert: (1-DL)^(1/alpha) * (1 + lambda/alpha) = 1 + theta*lambda/alpha
    const double lhs =
        std::pow(1.0 - dl_target, 1.0 / alpha) * (1.0 + lambda / alpha);
    const double theta = (lhs - 1.0) * alpha / lambda;
    return std::clamp(theta, 0.0, 1.0);
}

}  // namespace dlp::model
