#include "model/delay_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dlp::model {

double DelaySizeDistribution::survival(double a) const {
    if (a < 0.0) a = 0.0;
    switch (kind) {
        case Kind::Exponential:
            if (!(scale > 0.0)) throw std::domain_error("scale must be > 0");
            return std::exp(-a / scale);
        case Kind::Uniform:
            if (!(scale > 0.0)) throw std::domain_error("scale must be > 0");
            return a >= scale ? 0.0 : 1.0 - a / scale;
    }
    throw std::domain_error("unknown distribution");
}

double delay_defect_coverage(std::span<const DelayLine> lines,
                             const DelaySizeDistribution& dist) {
    double fail = 0.0;
    double detected = 0.0;
    for (const DelayLine& l : lines) {
        const double p_fail = l.weight * dist.survival(l.slack_op);
        fail += p_fail;
        if (!l.exercised) continue;
        // Detected iff s > slack_test AND s > slack_op (must also be a real
        // failure to count toward coverage of failing defects).
        const double p_det =
            l.weight * dist.survival(std::max(l.slack_op, l.slack_test));
        detected += p_det;
    }
    return fail == 0.0 ? 0.0 : detected / fail;
}

double delay_failure_probability(std::span<const DelayLine> lines,
                                 const DelaySizeDistribution& dist) {
    double fail = 0.0;
    double total = 0.0;
    for (const DelayLine& l : lines) {
        total += l.weight;
        fail += l.weight * dist.survival(l.slack_op);
    }
    return total == 0.0 ? 0.0 : fail / total;
}

}  // namespace dlp::model
