// Small statistics toolkit used across the project: logarithmic histograms
// (for the paper's fault-weight histogram, fig. 3), summary statistics and
// simple linear regression.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace dlp::model {

/// Histogram with logarithmically spaced bins, for magnitude-dispersed data
/// such as fault weights (the paper's weights span ~1e-9..1e-6).
class LogHistogram {
public:
    /// @param lo,hi        bin range (values outside are clamped into the
    ///                     first/last bin); both must be > 0, lo < hi
    /// @param bin_count    number of bins (>= 1)
    LogHistogram(double lo, double hi, int bin_count);

    void add(double value);
    void add_all(std::span<const double> values);

    int bin_count() const { return static_cast<int>(counts_.size()); }
    long count(int bin) const { return counts_.at(static_cast<size_t>(bin)); }
    long total() const;

    /// Geometric lower/upper edge of a bin.
    double bin_lo(int bin) const;
    double bin_hi(int bin) const;
    /// Geometric center of a bin.
    double bin_center(int bin) const;

    /// Ratio of the largest to the smallest non-empty bin center; quantifies
    /// the weight dispersion the paper argues cannot be ignored.
    double dispersion_decades() const;

    /// Multi-line ASCII rendering (one row per bin, '#' bars).
    std::string render(int width = 50) const;

private:
    double log_lo_;
    double log_hi_;
    std::vector<long> counts_;
};

/// Summary statistics of a sample.
struct Summary {
    size_t count = 0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double stddev = 0.0;
};

Summary summarize(std::span<const double> values);

/// Ordinary least-squares line y = intercept + slope * x.
struct LinearFit {
    double slope = 0.0;
    double intercept = 0.0;
    double r_squared = 0.0;
};

LinearFit linear_regression(std::span<const double> x,
                            std::span<const double> y);

}  // namespace dlp::model
