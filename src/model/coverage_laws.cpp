#include "model/coverage_laws.h"

#include <cmath>
#include <stdexcept>

#include "model/fit.h"

namespace dlp::model {

double CoverageLaw::coverage(double k) const {
    if (k < 1.0) throw std::domain_error("k must be >= 1");
    if (!(susceptibility > 1.0))
        throw std::domain_error("susceptibility must be > 1");
    return saturation * (1.0 - std::pow(k, -1.0 / std::log(susceptibility)));
}

double CoverageLaw::vectors_for(double target) const {
    if (!(susceptibility > 1.0))
        throw std::domain_error("susceptibility must be > 1");
    if (target < 0.0 || target >= saturation)
        throw std::domain_error("coverage target unreachable under this law");
    // saturation*(1 - k^(-1/ln s)) = target
    const double tail = 1.0 - target / saturation;
    return std::pow(tail, -std::log(susceptibility));
}

CoverageLaw fit_coverage_law(std::span<const CoveragePoint> points,
                             bool fit_saturation) {
    std::vector<CoveragePoint> usable;
    for (const auto& p : points)
        if (p.k >= 2.0 && p.coverage > 0.0 && p.coverage < 1.0)
            usable.push_back(p);
    if (usable.size() < 2)
        throw std::invalid_argument("need at least two usable curve points");

    if (!fit_saturation) {
        // ln(1-T) = -(1/ln s) * ln k: regression through the origin.
        double sxy = 0.0;
        double sxx = 0.0;
        for (const auto& p : usable) {
            const double x = std::log(p.k);
            const double y = std::log(1.0 - p.coverage);
            sxy += x * y;
            sxx += x * x;
        }
        const double slope = sxy / sxx;  // = -1/ln(s), negative
        if (slope >= 0.0)
            throw std::domain_error("coverage curve is not increasing");
        return CoverageLaw{std::exp(-1.0 / slope), 1.0};
    }

    // Joint fit of (s, saturation) by least squares on the coverage values.
    const auto unpack = [](std::span<const double> x) {
        const double s = 1.0 + std::exp(x[0]);
        const double sat = 1.0 / (1.0 + std::exp(-x[1]));
        return std::pair{s, sat};
    };
    const auto objective = [&](std::span<const double> x) {
        const auto [s, sat] = unpack(x);
        const CoverageLaw law{s, sat};
        double sum = 0.0;
        for (const auto& p : usable) {
            const double d = law.coverage(p.k) - p.coverage;
            sum += d * d;
        }
        return sum;
    };
    const double init[] = {1.0, 3.0};
    const MinimizeResult res = minimize(objective, init);
    const auto [s, sat] = unpack(res.x);
    return CoverageLaw{s, sat};
}

double susceptibility_ratio(double s_stuck_at, double s_realistic) {
    if (!(s_stuck_at > 1.0) || !(s_realistic > 1.0))
        throw std::domain_error("susceptibilities must be > 1");
    return std::log(s_stuck_at) / std::log(s_realistic);
}

}  // namespace dlp::model
