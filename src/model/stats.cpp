#include "model/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace dlp::model {

LogHistogram::LogHistogram(double lo, double hi, int bin_count) {
    if (!(lo > 0.0) || !(hi > lo))
        throw std::invalid_argument("need 0 < lo < hi");
    if (bin_count < 1) throw std::invalid_argument("need >= 1 bin");
    log_lo_ = std::log10(lo);
    log_hi_ = std::log10(hi);
    counts_.assign(static_cast<size_t>(bin_count), 0);
}

void LogHistogram::add(double value) {
    if (!(value > 0.0)) throw std::domain_error("log histogram needs v > 0");
    const double t = (std::log10(value) - log_lo_) / (log_hi_ - log_lo_);
    const int n = bin_count();
    int bin = static_cast<int>(std::floor(t * n));
    bin = std::clamp(bin, 0, n - 1);
    ++counts_[static_cast<size_t>(bin)];
}

void LogHistogram::add_all(std::span<const double> values) {
    for (double v : values) add(v);
}

long LogHistogram::total() const {
    return std::accumulate(counts_.begin(), counts_.end(), 0L);
}

double LogHistogram::bin_lo(int bin) const {
    const double w = (log_hi_ - log_lo_) / bin_count();
    return std::pow(10.0, log_lo_ + w * bin);
}

double LogHistogram::bin_hi(int bin) const { return bin_lo(bin + 1); }

double LogHistogram::bin_center(int bin) const {
    return std::sqrt(bin_lo(bin) * bin_hi(bin));
}

double LogHistogram::dispersion_decades() const {
    int first = -1;
    int last = -1;
    for (int i = 0; i < bin_count(); ++i) {
        if (count(i) > 0) {
            if (first < 0) first = i;
            last = i;
        }
    }
    if (first < 0) return 0.0;
    return std::log10(bin_center(last) / bin_center(first));
}

std::string LogHistogram::render(int width) const {
    const long peak = *std::max_element(counts_.begin(), counts_.end());
    std::string out;
    for (int i = 0; i < bin_count(); ++i) {
        char label[64];
        std::snprintf(label, sizeof(label), "%9.2e..%9.2e |", bin_lo(i),
                      bin_hi(i));
        out += label;
        const int bars =
            peak == 0 ? 0
                      : static_cast<int>(std::lround(
                            static_cast<double>(count(i)) * width /
                            static_cast<double>(peak)));
        out.append(static_cast<size_t>(bars), '#');
        out += "  (" + std::to_string(count(i)) + ")\n";
    }
    return out;
}

Summary summarize(std::span<const double> values) {
    Summary s;
    s.count = values.size();
    if (values.empty()) return s;
    s.min = *std::min_element(values.begin(), values.end());
    s.max = *std::max_element(values.begin(), values.end());
    s.mean = std::accumulate(values.begin(), values.end(), 0.0) /
             static_cast<double>(values.size());
    double var = 0.0;
    for (double v : values) var += (v - s.mean) * (v - s.mean);
    s.stddev = values.size() > 1
                   ? std::sqrt(var / static_cast<double>(values.size() - 1))
                   : 0.0;
    return s;
}

LinearFit linear_regression(std::span<const double> x,
                            std::span<const double> y) {
    if (x.size() != y.size() || x.size() < 2)
        throw std::invalid_argument("need >= 2 paired points");
    const double n = static_cast<double>(x.size());
    const double mx = std::accumulate(x.begin(), x.end(), 0.0) / n;
    const double my = std::accumulate(y.begin(), y.end(), 0.0) / n;
    double sxy = 0.0;
    double sxx = 0.0;
    double syy = 0.0;
    for (size_t i = 0; i < x.size(); ++i) {
        sxy += (x[i] - mx) * (y[i] - my);
        sxx += (x[i] - mx) * (x[i] - mx);
        syy += (y[i] - my) * (y[i] - my);
    }
    if (sxx == 0.0) throw std::domain_error("degenerate x values");
    LinearFit fit;
    fit.slope = sxy / sxx;
    fit.intercept = my - fit.slope * mx;
    fit.r_squared = syy == 0.0 ? 1.0 : (sxy * sxy) / (sxx * syy);
    return fit;
}

}  // namespace dlp::model
