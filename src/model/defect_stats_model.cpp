#include "model/defect_stats_model.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "model/planning.h"

namespace dlp::model {

namespace {

/// Shortest exact decimal for a double; keeps describe() canonical so the
/// descriptor round-trips through parse and is stable inside cache keys.
std::string num(double v) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

/// (1 + x/a)^{-a}, the Laplace transform of Gamma(a)/a at x; e^{-x} for
/// a = 0 (no mixing).  log1p keeps the large-a limit stable.
double nb_factor(double x, double a) {
    if (a <= 0.0) return std::exp(-x);
    return std::exp(-a * std::log1p(x / a));
}

/// Gauss-Legendre nodes/weights on [-1, 1], computed once per order by
/// Newton iteration on the Legendre recurrence (exact enough at 1e-15;
/// no hardcoded tables to mistype).
struct GaussLegendre {
    std::vector<double> x;
    std::vector<double> w;
    explicit GaussLegendre(int n) : x(static_cast<size_t>(n)),
                                    w(static_cast<size_t>(n)) {
        const int m = (n + 1) / 2;
        for (int i = 0; i < m; ++i) {
            double z = std::cos(3.14159265358979323846 *
                                (static_cast<double>(i) + 0.75) /
                                (static_cast<double>(n) + 0.5));
            double pp = 0.0;
            for (int it = 0; it < 100; ++it) {
                double p1 = 1.0, p2 = 0.0;
                for (int j = 0; j < n; ++j) {
                    const double p3 = p2;
                    p2 = p1;
                    p1 = ((2.0 * j + 1.0) * z * p2 - j * p3) / (j + 1.0);
                }
                pp = n * (z * p1 - p2) / (z * z - 1.0);
                const double z1 = z;
                z = z1 - p1 / pp;
                if (std::abs(z - z1) < 1e-15) break;
            }
            x[static_cast<size_t>(i)] = -z;
            x[static_cast<size_t>(n - 1 - i)] = z;
            w[static_cast<size_t>(i)] = 2.0 / ((1.0 - z * z) * pp * pp);
            w[static_cast<size_t>(n - 1 - i)] = w[static_cast<size_t>(i)];
        }
    }
};

const GaussLegendre& quad16() {
    static const GaussLegendre gl(16);
    return gl;
}

/// E[h(S)] with S = Gamma(a)/a (mean 1, shape a > 0).
///
/// a >= 1: the density g^{a-1} e^{-g} / Gamma(a) is bounded, so composite
/// Gauss-Legendre directly in g over mean +/- 14 sigma converges fast; the
/// density is evaluated in log space so very large shapes never overflow.
///
/// a < 1: the density diverges at 0, so substitute u = g^a, which
/// flattens the singularity exactly:
///   E[h] = (1 / Gamma(a+1)) * Int_0^{u_max} e^{-u^{1/a}} h(u^{1/a} / a) du
/// with u_max = g_max^a <= g_max (a < 1 compresses the domain), and the
/// transformed integrand is smooth on the whole panel range.
template <typename H>
double gamma_mixture_expect(double a, const H& h) {
    const GaussLegendre& gl = quad16();
    const int panels = 32;
    double sum = 0.0;
    if (a >= 1.0) {
        const double span = 14.0 * std::sqrt(a) + 40.0;  // tail < 1e-17
        const double lo_g = std::max(0.0, a - span);
        const double dg = (a + span - lo_g) / panels;
        const double lg = std::lgamma(a);
        for (int p = 0; p < panels; ++p) {
            const double base = lo_g + p * dg;
            for (size_t i = 0; i < gl.x.size(); ++i) {
                const double g = base + 0.5 * dg * (gl.x[i] + 1.0);
                const double log_density = (a - 1.0) * std::log(g) - g - lg;
                sum += 0.5 * dg * gl.w[i] * std::exp(log_density) * h(g / a);
            }
        }
        return sum;
    }
    const double g_max = a + 14.0 * std::sqrt(a) + 40.0;
    const double u_max = std::pow(g_max, a);
    const double du = u_max / panels;
    for (int p = 0; p < panels; ++p) {
        const double lo = p * du;
        for (size_t i = 0; i < gl.x.size(); ++i) {
            const double u = lo + 0.5 * du * (gl.x[i] + 1.0);
            const double g = std::pow(u, 1.0 / a);
            sum += 0.5 * du * gl.w[i] * std::exp(-g) * h(g / a);
        }
    }
    return sum / std::tgamma(a + 1.0);
}

}  // namespace

double DefectStatsModel::pass_probability(double lambda,
                                          double theta) const {
    if (lambda < 0.0) throw std::domain_error("lambda must be >= 0");
    if (theta < 0.0 || theta > 1.0)
        throw std::domain_error("theta must be in [0,1]");
    switch (kind) {
        case Kind::Poisson:
            return std::exp(-theta * lambda);
        case Kind::NegBin:
            return nb_factor(theta * lambda, alpha);
        case Kind::Hierarchical:
            break;
    }
    // Region product conditioned on the shared wafer/die scale g.
    const std::vector<RegionDensity> one{RegionDensity{}};
    const std::vector<RegionDensity>& regs = regions.empty() ? one : regions;
    const auto product = [&](double g) {
        double p = 1.0;
        for (const RegionDensity& r : regs)
            p *= nb_factor(theta * lambda * r.fraction * g, r.alpha);
        return p;
    };
    if (wafer_alpha <= 0.0 && die_alpha <= 0.0) return product(1.0);
    if (wafer_alpha > 0.0 && die_alpha > 0.0)
        return gamma_mixture_expect(wafer_alpha, [&](double sw) {
            return gamma_mixture_expect(
                die_alpha, [&](double sd) { return product(sw * sd); });
        });
    const double a = wafer_alpha > 0.0 ? wafer_alpha : die_alpha;
    return gamma_mixture_expect(a, product);
}

double DefectStatsModel::yield(double lambda) const {
    return pass_probability(lambda, 1.0);
}

double DefectStatsModel::dl(double lambda, double theta) const {
    switch (kind) {
        case Kind::Poisson:
            // 1 - Y^(1-theta) with Y = e^{-lambda}: eq (3) exactly.
            return 1.0 - std::exp(-(1.0 - theta) * lambda);
        case Kind::NegBin:
            return clustered_dl(lambda, alpha, theta);
        case Kind::Hierarchical:
            break;
    }
    const double pass = pass_probability(lambda, theta);
    if (pass <= 0.0) return 0.0;  // nothing ships, nothing is defective
    return 1.0 - pass_probability(lambda, 1.0) / pass;
}

double DefectStatsModel::dl_of_coverage(double lambda, double r,
                                        double theta_max, double t) const {
    const double tc = std::clamp(t, 0.0, 1.0);
    const double theta =
        std::clamp(theta_max * (1.0 - std::pow(1.0 - tc, r)), 0.0, 1.0);
    return dl(lambda, theta);
}

double DefectStatsModel::required_theta(double lambda,
                                        double dl_target) const {
    if (dl_target < 0.0 || dl_target >= 1.0)
        throw std::domain_error("dl_target must be in [0,1)");
    if (lambda == 0.0) return 0.0;  // perfect yield
    switch (kind) {
        case Kind::Poisson: {
            // Invert 1 - e^{-(1-theta)lambda} = DL.
            const double theta =
                1.0 + std::log1p(-dl_target) / lambda;
            return std::clamp(theta, 0.0, 1.0);
        }
        case Kind::NegBin:
            return clustered_required_theta(lambda, alpha, dl_target);
        case Kind::Hierarchical:
            break;
    }
    // dl is continuous and decreasing in theta with dl(., 1) = 0, so the
    // smallest admissible theta bisects cleanly.
    double lo = 0.0, hi = 1.0;
    if (dl(lambda, lo) <= dl_target) return 0.0;
    for (int i = 0; i < 200; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (dl(lambda, mid) <= dl_target)
            hi = mid;
        else
            lo = mid;
    }
    return hi;
}

double DefectStatsModel::lambda_for_yield(double y) const {
    if (!(y > 0.0) || y > 1.0)
        throw std::domain_error("yield must be in (0,1]");
    switch (kind) {
        case Kind::Poisson:
            return -std::log(y);
        case Kind::NegBin:
            return alpha * (std::pow(y, -1.0 / alpha) - 1.0);
        case Kind::Hierarchical:
            break;
    }
    if (y == 1.0) return 0.0;
    double hi = 1.0;
    while (yield(hi) > y && hi < 1e12) hi *= 2.0;
    double lo = 0.0;
    for (int i = 0; i < 200; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (yield(mid) > y)
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

std::string DefectStatsModel::describe() const {
    switch (kind) {
        case Kind::Poisson:
            return "poisson";
        case Kind::NegBin:
            return "negbin:" + num(alpha);
        case Kind::Hierarchical:
            break;
    }
    std::string out = "hier";
    char sep = ':';
    const auto clause = [&](const std::string& text) {
        out += sep;
        out += text;
        sep = ';';
    };
    if (wafer_alpha > 0.0) clause("wafer=" + num(wafer_alpha));
    if (die_alpha > 0.0) clause("die=" + num(die_alpha));
    for (const RegionDensity& r : regions)
        clause("region=" + num(r.fraction) + "@" + num(r.alpha));
    return out;
}

namespace {

[[noreturn]] void parse_fail(const std::string& text,
                             const std::string& what) {
    throw std::invalid_argument("defect_stats '" + text + "': " + what);
}

/// Parses a shape value; "inf"/"infinity" means "no mixing at this level"
/// (the Poisson limit), encoded as 0.
double parse_shape(const std::string& text, const std::string& v) {
    if (v == "inf" || v == "infinity") return 0.0;
    size_t pos = 0;
    double a = 0.0;
    try {
        a = std::stod(v, &pos);
    } catch (const std::exception&) {
        parse_fail(text, "bad shape '" + v + "'");
    }
    if (pos != v.size()) parse_fail(text, "bad shape '" + v + "'");
    if (!(a >= 0.0) || !std::isfinite(a))
        parse_fail(text, "shape must be finite and >= 0");
    return a;
}

}  // namespace

DefectStatsModel parse_defect_stats(const std::string& text) {
    DefectStatsModel m;
    if (text.empty() || text == "poisson") return m;

    if (text.rfind("negbin", 0) == 0) {
        if (text.size() < 8 || text[6] != ':')
            parse_fail(text, "expected negbin:<alpha>");
        const std::string v = text.substr(7);
        if (v == "inf" || v == "infinity") return m;  // the Poisson limit
        size_t pos = 0;
        double a = 0.0;
        try {
            a = std::stod(v, &pos);
        } catch (const std::exception&) {
            parse_fail(text, "bad alpha '" + v + "'");
        }
        if (pos != v.size()) parse_fail(text, "bad alpha '" + v + "'");
        if (!(a > 0.0) || !std::isfinite(a))
            parse_fail(text, "alpha must be finite and > 0");
        m.kind = DefectStatsModel::Kind::NegBin;
        m.alpha = a;
        return m;
    }

    if (text.rfind("hier", 0) != 0)
        parse_fail(text, "expected poisson, negbin:<alpha> or hier[:...]");
    m.kind = DefectStatsModel::Kind::Hierarchical;
    std::string rest = text.substr(4);
    if (!rest.empty()) {
        if (rest.front() != ':') parse_fail(text, "expected hier:<clauses>");
        rest.erase(0, 1);
        size_t start = 0;
        while (start <= rest.size()) {
            const size_t semi = rest.find(';', start);
            const std::string clause =
                rest.substr(start, semi == std::string::npos
                                       ? std::string::npos
                                       : semi - start);
            start = semi == std::string::npos ? rest.size() + 1 : semi + 1;
            if (clause.empty()) parse_fail(text, "empty clause");
            const size_t eq = clause.find('=');
            if (eq == std::string::npos)
                parse_fail(text, "expected <key>=<value> in '" + clause + "'");
            const std::string key = clause.substr(0, eq);
            const std::string value = clause.substr(eq + 1);
            if (key == "wafer") {
                m.wafer_alpha = parse_shape(text, value);
            } else if (key == "die") {
                m.die_alpha = parse_shape(text, value);
            } else if (key == "region") {
                RegionDensity r;
                const size_t at = value.find('@');
                const std::string frac =
                    at == std::string::npos ? value : value.substr(0, at);
                size_t pos = 0;
                try {
                    r.fraction = std::stod(frac, &pos);
                } catch (const std::exception&) {
                    parse_fail(text, "bad region fraction '" + frac + "'");
                }
                if (pos != frac.size())
                    parse_fail(text, "bad region fraction '" + frac + "'");
                if (!(r.fraction > 0.0) || r.fraction > 1.0 ||
                    !std::isfinite(r.fraction))
                    parse_fail(text, "region fraction must be in (0,1]");
                if (at != std::string::npos)
                    r.alpha = parse_shape(text, value.substr(at + 1));
                m.regions.push_back(r);
            } else {
                parse_fail(text, "unknown clause '" + key + "'");
            }
        }
    }
    if (m.regions.empty()) m.regions.push_back(RegionDensity{});
    double total = 0.0;
    for (const RegionDensity& r : m.regions) total += r.fraction;
    if (std::abs(total - 1.0) > 1e-6)
        parse_fail(text, "region fractions sum to " + num(total) +
                             ", expected 1");
    return m;
}

}  // namespace dlp::model
