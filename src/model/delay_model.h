// Statistical delay-fault model after the paper's reference [8]
// (Park, Mercer & Williams, "A Statistical Model for Delay-Fault
// Testing"): a delay defect of random size s sits on a line with timing
// slack; the chip *fails at speed* iff s exceeds the line's slack at the
// operating period, and a transition test *detects* it iff the test
// exercises the line and s exceeds the slack at the test period.
//
// Delay-defect coverage is therefore a conditional probability over the
// defect-size distribution:
//   DC = P(detected by test | defect causes an at-speed failure)
// which depends on the test clock: testing slower than the mission clock
// leaves small-but-fatal delay defects undetected (the classic result of
// ref. [8]).
#pragma once

#include <span>

namespace dlp::model {

/// Defect-size distribution: P(s > a) survival functions.
struct DelaySizeDistribution {
    enum class Kind { Exponential, Uniform } kind = Kind::Exponential;
    double scale = 1.0;  ///< mean (Exponential) or max (Uniform)

    double survival(double a) const;  ///< P(size > a), a >= 0
};

/// One line's inputs to the coverage computation.
struct DelayLine {
    double slack_op = 0.0;    ///< slack at the operating (mission) period
    double slack_test = 0.0;  ///< slack at the test period
    bool exercised = false;   ///< the test launches a transition through it
    double weight = 1.0;      ///< likelihood weight of a defect here
};

/// Delay-defect coverage, eq. above.  Returns 0 when no line can fail.
double delay_defect_coverage(std::span<const DelayLine> lines,
                             const DelaySizeDistribution& dist);

/// Probability that a delay defect (uniformly weighted over `lines`)
/// causes an at-speed failure at all - the denominator of the coverage.
double delay_failure_probability(std::span<const DelayLine> lines,
                                 const DelaySizeDistribution& dist);

}  // namespace dlp::model
