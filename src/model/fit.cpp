#include "model/fit.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <tuple>

#include "model/dl_models.h"

namespace dlp::model {

namespace {

using Vec = std::vector<double>;

Vec blend(const Vec& a, const Vec& b, double wa, double wb) {
    Vec out(a.size());
    for (size_t i = 0; i < a.size(); ++i) out[i] = wa * a[i] + wb * b[i];
    return out;
}

/// Non-finite objective values (overflow, NaN from degenerate data) are
/// treated as "worse than anything finite": they keep the vertex ordering a
/// valid strict weak order and push the simplex back toward finite ground.
double sanitize(double v) {
    return std::isfinite(v) ? v : std::numeric_limits<double>::infinity();
}

}  // namespace

MinimizeResult minimize(
    const std::function<double(std::span<const double>)>& objective,
    std::span<const double> initial, const MinimizeOptions& options) {
    const size_t n = initial.size();
    if (n == 0) throw std::invalid_argument("empty initial point");

    // Build the initial simplex: the start point plus one vertex per axis.
    std::vector<Vec> simplex;
    simplex.emplace_back(initial.begin(), initial.end());
    for (size_t i = 0; i < n; ++i) {
        Vec v(initial.begin(), initial.end());
        const double step =
            v[i] != 0.0 ? options.initial_step * std::abs(v[i])
                        : options.initial_step;
        v[i] += step;
        simplex.push_back(std::move(v));
    }
    std::vector<double> f(simplex.size());
    for (size_t i = 0; i < simplex.size(); ++i)
        f[i] = sanitize(objective(simplex[i]));

    MinimizeResult result;
    for (result.iterations = 0; result.iterations < options.max_iterations;
         ++result.iterations) {
        // Order vertices by objective value.
        std::vector<size_t> order(simplex.size());
        std::iota(order.begin(), order.end(), size_t{0});
        std::sort(order.begin(), order.end(),
                  [&](size_t a, size_t b) { return f[a] < f[b]; });
        const size_t best = order.front();
        const size_t worst = order.back();
        const size_t second_worst = order[order.size() - 2];

        if (std::abs(f[worst] - f[best]) <
            options.tolerance * (1.0 + std::abs(f[best]))) {
            result.converged = true;
            break;
        }

        // Centroid of all vertices except the worst.
        Vec centroid(n, 0.0);
        for (size_t i : order)
            if (i != worst)
                for (size_t d = 0; d < n; ++d) centroid[d] += simplex[i][d];
        for (double& c : centroid) c /= static_cast<double>(n);

        // Reflection.
        Vec reflected = blend(centroid, simplex[worst], 2.0, -1.0);
        const double f_reflected = sanitize(objective(reflected));
        if (f_reflected < f[best]) {
            // Expansion.
            Vec expanded = blend(centroid, simplex[worst], 3.0, -2.0);
            const double f_expanded = sanitize(objective(expanded));
            if (f_expanded < f_reflected) {
                simplex[worst] = std::move(expanded);
                f[worst] = f_expanded;
            } else {
                simplex[worst] = std::move(reflected);
                f[worst] = f_reflected;
            }
            continue;
        }
        if (f_reflected < f[second_worst]) {
            simplex[worst] = std::move(reflected);
            f[worst] = f_reflected;
            continue;
        }
        // Contraction.
        Vec contracted = blend(centroid, simplex[worst], 0.5, 0.5);
        const double f_contracted = sanitize(objective(contracted));
        if (f_contracted < f[worst]) {
            simplex[worst] = std::move(contracted);
            f[worst] = f_contracted;
            continue;
        }
        // Shrink toward the best vertex.
        for (size_t i = 0; i < simplex.size(); ++i) {
            if (i == best) continue;
            simplex[i] = blend(simplex[best], simplex[i], 0.5, 0.5);
            f[i] = sanitize(objective(simplex[i]));
        }
    }

    const size_t best = static_cast<size_t>(
        std::min_element(f.begin(), f.end()) - f.begin());
    result.x = simplex[best];
    result.value = f[best];
    return result;
}

namespace {

double rms(double sum_sq, size_t count) {
    return count == 0 ? 0.0 : std::sqrt(sum_sq / static_cast<double>(count));
}

}  // namespace

ProposedFit fit_proposed_model(double yield,
                               std::span<const FalloutPoint> raw_points) {
    if (raw_points.empty()) throw std::invalid_argument("no fallout points");
    // Drop non-finite points and clamp coverages into [0,1] so degenerate
    // curves (interrupted runs, saturated coverage) fit to finite
    // parameters instead of poisoning the search with NaN.
    std::vector<FalloutPoint> points;
    points.reserve(raw_points.size());
    for (const auto& p : raw_points) {
        if (!std::isfinite(p.coverage) || !std::isfinite(p.defect_level))
            continue;
        points.push_back({std::clamp(p.coverage, 0.0, 1.0),
                          std::max(p.defect_level, 0.0)});
    }
    if (points.empty())
        throw std::invalid_argument("no finite fallout points");

    // Parameterize r = 1 + e^u (>=1) and theta_max = 1/(1+e^-v) clipped to
    // (0,1] so the simplex search is unconstrained.
    const auto unpack = [](std::span<const double> x) {
        const double r = 1.0 + std::exp(x[0]);
        const double theta_max = 1.0 / (1.0 + std::exp(-x[1]));
        return std::pair{std::min(r, 16.0), theta_max};
    };
    // Fit in log-DL space: defect levels span orders of magnitude (ppm at
    // high coverage), and the residual floor near T = 1 - the model's whole
    // point - would be invisible to absolute-error least squares.
    constexpr double kFloor = 1e-9;
    const auto objective = [&](std::span<const double> x) {
        const auto [r, theta_max] = unpack(x);
        const ProposedModel m{yield, r, theta_max};
        double sum = 0.0;
        for (const auto& p : points) {
            const double d = std::log(std::max(m.dl(p.coverage), kFloor)) -
                             std::log(std::max(p.defect_level, kFloor));
            sum += d * d;
        }
        return sum;
    };

    // Start near R = 2, theta_max = 0.97 (paper's typical values).
    const double init[] = {0.0, 3.5};
    const MinimizeResult res = minimize(objective, init);
    const auto [r, theta_max] = unpack(res.x);
    return ProposedFit{r, theta_max, rms(res.value, points.size())};
}

AgrawalFit fit_agrawal_model(double yield,
                             std::span<const FalloutPoint> points) {
    if (points.empty()) throw std::invalid_argument("no fallout points");
    const auto unpack = [](std::span<const double> x) {
        return std::min(1.0 + std::exp(x[0]), 64.0);
    };
    const auto objective = [&](std::span<const double> x) {
        const double n = unpack(x);
        double sum = 0.0;
        for (const auto& p : points) {
            const double d = agrawal_dl(yield, p.coverage, n) - p.defect_level;
            sum += d * d;
        }
        return sum;
    };
    const double init[] = {0.5};
    const MinimizeResult res = minimize(objective, init);
    return AgrawalFit{unpack(res.x), rms(res.value, points.size())};
}

namespace {

/// Negative-binomial NLL of per-die defect counts at shape alpha, with
/// the mean fixed at the sample mean (its MLE).  lgamma keeps the
/// Gamma-ratio stable for large counts and shapes.
double negbin_nll(std::span<const long> counts, double mean, double alpha) {
    const double la = std::log(alpha);
    const double lap = std::log(alpha + mean);
    const double lm = mean > 0.0 ? std::log(mean) : 0.0;
    double nll = 0.0;
    for (const long k : counts) {
        const double kd = static_cast<double>(k);
        nll -= std::lgamma(kd + alpha) - std::lgamma(alpha) -
               std::lgamma(kd + 1.0) + alpha * (la - lap) +
               kd * (lm - lap);
    }
    return nll;
}

constexpr double kAlphaMin = 1e-3;
constexpr double kAlphaMax = 1e6;

}  // namespace

double fit_negbin_alpha(std::span<const long> counts) {
    if (counts.empty()) throw std::invalid_argument("no die counts");
    double mean = 0.0;
    for (const long k : counts) {
        if (k < 0) throw std::invalid_argument("negative die count");
        mean += static_cast<double>(k);
    }
    mean /= static_cast<double>(counts.size());
    if (mean == 0.0) throw std::invalid_argument("all-zero die counts");
    const auto unpack = [](std::span<const double> x) {
        return std::clamp(std::exp(x[0]), kAlphaMin, kAlphaMax);
    };
    const auto objective = [&](std::span<const double> x) {
        return negbin_nll(counts, mean, unpack(x));
    };
    const double init[] = {std::log(2.0)};
    return unpack(minimize(objective, init).x);
}

ClusteredFit fit_clustered_model(double lambda,
                                 std::span<const FalloutPoint> raw_points,
                                 std::span<const long> die_counts) {
    if (raw_points.empty()) throw std::invalid_argument("no fallout points");
    if (!(lambda >= 0.0) || !std::isfinite(lambda))
        throw std::invalid_argument("bad lambda");
    std::vector<FalloutPoint> points;
    points.reserve(raw_points.size());
    for (const auto& p : raw_points) {
        if (!std::isfinite(p.coverage) || !std::isfinite(p.defect_level))
            continue;
        points.push_back({std::clamp(p.coverage, 0.0, 1.0),
                          std::max(p.defect_level, 0.0)});
    }
    if (points.empty())
        throw std::invalid_argument("no finite fallout points");
    double count_mean = 0.0;
    for (const long k : die_counts) {
        if (k < 0) throw std::invalid_argument("negative die count");
        count_mean += static_cast<double>(k);
    }
    const bool use_counts = !die_counts.empty() && count_mean > 0.0;
    if (use_counts) count_mean /= static_cast<double>(die_counts.size());

    const auto unpack = [](std::span<const double> x) {
        const double r = std::min(1.0 + std::exp(x[0]), 16.0);
        const double theta_max = 1.0 / (1.0 + std::exp(-x[1]));
        const double alpha = std::clamp(std::exp(x[2]), 1e-2, kAlphaMax);
        return std::tuple{r, theta_max, alpha};
    };
    // The clustered DL(T): negbin thinning through theta(T) of eq (9).
    const auto model_dl = [&](double r, double theta_max, double alpha,
                              double t) {
        const double theta = std::clamp(
            theta_max * (1.0 - std::pow(1.0 - t, r)), 0.0, 1.0);
        const double num = 1.0 + theta * lambda / alpha;
        const double den = 1.0 + lambda / alpha;
        return 1.0 - std::pow(num / den, alpha);
    };
    constexpr double kFloor = 1e-9;
    const auto log_sse = [&](double r, double theta_max, double alpha) {
        double sum = 0.0;
        for (const auto& p : points) {
            const double d =
                std::log(std::max(model_dl(r, theta_max, alpha, p.coverage),
                                  kFloor)) -
                std::log(std::max(p.defect_level, kFloor));
            sum += d * d;
        }
        return sum;
    };
    // Penalized joint objective on a per-observation scale: the mean
    // squared log-DL residual plus (when counts were observed) the negbin
    // NLL per die, so neither term drowns the other as sizes grow.
    const auto objective = [&](std::span<const double> x) {
        const auto [r, theta_max, alpha] = unpack(x);
        double value =
            log_sse(r, theta_max, alpha) / static_cast<double>(points.size());
        if (use_counts)
            value += negbin_nll(die_counts, count_mean, alpha) /
                     static_cast<double>(die_counts.size());
        return value;
    };

    const double init[] = {0.0, 3.5, std::log(2.0)};
    const MinimizeResult res = minimize(objective, init);
    const auto [r, theta_max, alpha] = unpack(res.x);
    ClusteredFit fit;
    fit.r = r;
    fit.theta_max = theta_max;
    fit.alpha = alpha;
    fit.rms_error = rms(log_sse(r, theta_max, alpha), points.size());
    if (use_counts)
        fit.count_nll = negbin_nll(die_counts, count_mean, alpha) /
                        static_cast<double>(die_counts.size());
    return fit;
}

}  // namespace dlp::model
