// Worst-case / average-case quality statistics of an n-detection test set
// (Pomeranz & Reddy, "Worst-Case and Average-Case Analysis of n-Detection
// Test Sets").
//
// The paper's DL(T) model (eq. 11) grades a test set by a single coverage
// number; an n-detection set tightens that grade by requiring each fault be
// detected by n distinct vectors.  This module reduces a per-fault
// detection-count table (dlp::sim::Session::detection_counts()) to the two
// figures of merit Pomeranz & Reddy plot per n:
//   * worst-case coverage  — the fraction of testable faults that reached
//     the full target n (the set's guaranteed multiplicity), and
//   * average-case coverage — mean over testable faults of
//     min(count, n) / n (how close the set is to the target on average).
// At n = 1 both reduce to the classic testable-fault coverage, so the
// profile is a strict generalization of TestGenResult::coverage().
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace dlp::model {

/// Per-n quality profile of a detection-count table.
struct NDetectProfile {
    int target = 1;          ///< the n the counts were graded against
    std::size_t faults = 0;  ///< faults profiled (total minus excluded)
    /// Min count over profiled faults (0 when some testable fault was
    /// never detected — the worst-case fault of the set).
    int min_detections = 0;
    double mean_detections = 0.0;  ///< mean count over profiled faults
    /// Fraction of profiled faults with count >= target (worst case).
    double worst_case_coverage = 0.0;
    /// Mean of min(count, target) / target over profiled faults.
    double avg_case_coverage = 0.0;
    /// histogram[k] = profiled faults with count == k, k in [0, target]
    /// (counts are saturated at the target upstream).
    std::vector<std::size_t> histogram;
};

/// Profiles a detection-count table against target n.  Entries < 0 and
/// entries > target are clamped into [0, target].  `exclude` (optional,
/// same length as `counts`) removes faults that cannot be detected by
/// construction — typically the redundant set — so coverage figures are
/// over testable faults, matching TestGenResult::coverage().
NDetectProfile ndetect_profile(std::span<const int> counts, int target,
                               std::span<const std::uint8_t> exclude = {});

}  // namespace dlp::model
