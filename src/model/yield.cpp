#include "model/yield.h"

#include <cmath>
#include <stdexcept>

namespace dlp::model {

double weight_from_probability(double p) {
    if (p < 0.0 || p >= 1.0)
        throw std::domain_error("probability must be in [0,1)");
    return -std::log1p(-p);
}

double probability_from_weight(double w) {
    if (w < 0.0) throw std::domain_error("weight must be >= 0");
    return -std::expm1(-w);
}

double poisson_yield(double total_weight) {
    if (total_weight < 0.0) throw std::domain_error("weight must be >= 0");
    return std::exp(-total_weight);
}

double total_weight_for_yield(double yield) {
    if (!(yield > 0.0) || yield > 1.0)
        throw std::domain_error("yield must be in (0,1]");
    return -std::log(yield);
}

double stapper_yield(double lambda, double alpha) {
    if (lambda < 0.0) throw std::domain_error("lambda must be >= 0");
    if (!(alpha > 0.0)) throw std::domain_error("alpha must be > 0");
    return std::pow(1.0 + lambda / alpha, -alpha);
}

double weighted_coverage(std::span<const double> weights,
                         std::span<const bool> detected) {
    if (weights.size() != detected.size())
        throw std::invalid_argument("weights/detected size mismatch");
    double total = 0.0;
    double hit = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
        if (weights[i] < 0.0) throw std::domain_error("negative weight");
        total += weights[i];
        if (detected[i]) hit += weights[i];
    }
    return total == 0.0 ? 0.0 : hit / total;
}

double unweighted_coverage(std::span<const bool> detected) {
    if (detected.empty()) return 0.0;
    size_t hit = 0;
    for (bool d : detected) hit += d ? 1 : 0;
    return static_cast<double>(hit) / static_cast<double>(detected.size());
}

double yield_scale_factor(double current_total_weight, double target_yield) {
    if (!(current_total_weight > 0.0))
        throw std::domain_error("total weight must be > 0");
    return total_weight_for_yield(target_yield) / current_total_weight;
}

}  // namespace dlp::model
