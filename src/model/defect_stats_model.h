// Pluggable defect-count statistics behind the yield / defect-level
// equations (ROADMAP item 4; Bogdanov et al., "Statistical Yield Modeling
// for IC Manufacture: Hierarchical Fault Distributions").
//
// The paper derives eq (5) Y = e^{-sum w} and eq (3) DL = 1 - Y^(1-theta)
// from Poisson defect statistics.  Real wafers cluster, so this module
// generalizes both to an arbitrary mixing distribution over the die's
// defect rate Lambda with E[Lambda] = lambda:
//   P_pass(theta) = E[e^{-theta * Lambda}]          (a test covering theta
//                                                    of the weight thins
//                                                    defects by theta)
//   Y             = P_pass(1)                        (generalized eq 5)
//   DL(theta)     = 1 - P_pass(1) / P_pass(theta)    (generalized eq 3)
// and eq (11) follows by composing theta(T) = theta_max (1 - (1-T)^R).
//
// Three backends:
//   poisson        Lambda = lambda deterministically; exactly the paper.
//   negbin(alpha)  Lambda = lambda * Gamma(alpha)/alpha (Stapper): the
//                  closed forms in model/planning.h (clustered_dl).
//   hierarchical   wafer -> die -> region composition: Lambda_i =
//                  lambda * f_i * S_wafer * S_die * S_region_i with each
//                  S ~ Gamma(a)/a (mean 1, shape a; a = 0 disables that
//                  level).  Region factors are independent per region;
//                  the wafer/die factors are shared across regions of one
//                  die.  With no shared factor the transform is a closed
//                  product of negative-binomial factors; otherwise it is
//                  integrated numerically (Gauss-Legendre, smooth after a
//                  u = g^a substitution that removes the alpha < 1
//                  singularity).
//
// Every backend keeps E[Lambda] = lambda (region fractions sum to 1), so
// switching statistics never changes the fault weights or the simulated
// coverage curves — only the projection from coverage to DL.
#pragma once

#include <string>
#include <vector>

namespace dlp::model {

/// One region of the hierarchical per-region density map: `fraction` of
/// the total defect rate, gamma-mixed with shape `alpha` (0 = Poisson
/// region, i.e. no region-level clustering).
struct RegionDensity {
    double fraction = 1.0;
    double alpha = 0.0;
};

struct DefectStatsModel {
    enum class Kind { Poisson, NegBin, Hierarchical };

    Kind kind = Kind::Poisson;
    /// NegBin: the Stapper clustering parameter (> 0; smaller = more
    /// clustered).  Unused by the other kinds.
    double alpha = 0.0;
    /// Hierarchical: shared wafer-level mixing shape (0 = off).
    double wafer_alpha = 0.0;
    /// Hierarchical: shared die-level mixing shape (0 = off).
    double die_alpha = 0.0;
    /// Hierarchical: the per-region density map (fractions sum to 1).
    std::vector<RegionDensity> regions;

    bool is_poisson() const { return kind == Kind::Poisson; }

    /// E[e^{-theta * Lambda}] at mean defect rate lambda: the probability
    /// that a die has no test-detected defect when the test covers
    /// `theta` of the defect weight.
    double pass_probability(double lambda, double theta) const;

    /// Generalized eq (5): P(defect-free) = pass_probability(lambda, 1).
    double yield(double lambda) const;

    /// Generalized eq (3): DL = 1 - P(clean | passed) at realistic
    /// coverage theta.  0 when nothing can pass.
    double dl(double lambda, double theta) const;

    /// Generalized eq (11): DL at stuck-at coverage t through
    /// theta(t) = theta_max * (1 - (1 - t)^r).
    double dl_of_coverage(double lambda, double r, double theta_max,
                          double t) const;

    /// Smallest theta with dl(lambda, theta) <= dl_target (clamped to
    /// [0, 1]; the generalization of clustered_required_theta).
    double required_theta(double lambda, double dl_target) const;

    /// Mean defect rate that produces yield y (inverse of yield()).
    double lambda_for_yield(double y) const;

    /// Canonical descriptor, stable for cache keys and reports:
    /// "poisson", "negbin:<alpha>", or
    /// "hier[:wafer=<a>][;die=<a>];region=<f>@<a>;..." — round-trips
    /// through parse_defect_stats().
    std::string describe() const;
};

/// Parses a defect-statistics descriptor:
///   poisson
///   negbin:<alpha>        alpha > 0, or "inf" (the Poisson limit)
///   hier[:<clause>[;<clause>...]]
///     clauses: wafer=<a>  shared wafer-level shape (a >= 0, inf = off)
///              die=<a>    shared die-level shape
///              region=<f>[@<a>]  region with density fraction f (0, 1]
///                         and optional shape a (default 0 = Poisson)
/// Region fractions must sum to 1 (1e-6 tolerance); no region clause
/// means one Poisson region.  The comma never appears in a descriptor,
/// so descriptors are safe list items in campaign [grid] axes.
/// Throws std::invalid_argument on malformed input.
DefectStatsModel parse_defect_stats(const std::string& text);

}  // namespace dlp::model
