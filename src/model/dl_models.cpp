#include "model/dl_models.h"

#include <algorithm>
#include <cmath>

namespace dlp::model {

namespace {

// Range checks are written as !(in-range) so NaN inputs fail them too
// instead of slipping through reversed comparisons.
void check_yield(double yield) {
    if (!(yield > 0.0 && yield <= 1.0))
        throw std::domain_error("yield must be in (0,1]");
}

void check_coverage(double coverage) {
    if (!(coverage >= 0.0 && coverage <= 1.0))
        throw std::domain_error("coverage must be in [0,1]");
}

double clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

}  // namespace

double williams_brown_dl(double yield, double coverage) {
    check_yield(yield);
    check_coverage(coverage);
    return 1.0 - std::pow(yield, 1.0 - coverage);
}

double williams_brown_required_coverage(double yield, double dl) {
    check_yield(yield);
    if (yield == 1.0) {
        // A perfect-yield process ships no defects at any coverage.
        if (!(dl >= 0.0)) throw std::domain_error("dl must be >= 0");
        return 0.0;
    }
    if (!(dl >= 0.0 && dl < 1.0))
        throw std::domain_error("dl must be in [0,1)");
    const double max_dl = 1.0 - yield;  // DL at T = 0
    if (dl >= max_dl) return 0.0;
    // 1 - Y^(1-T) = dl  =>  1-T = ln(1-dl)/ln(Y).  Clamped: for Y near 1
    // ln(Y) -> -0 and the quotient can overshoot [0,1] numerically.
    const double one_minus_t = std::log(1.0 - dl) / std::log(yield);
    return clamp01(1.0 - one_minus_t);
}

double agrawal_dl(double yield, double coverage, double n_avg) {
    check_yield(yield);
    check_coverage(coverage);
    if (!(n_avg >= 1.0)) throw std::domain_error("n_avg must be >= 1");
    const double esc = (1.0 - coverage) * (1.0 - yield) *
                       std::exp(-(n_avg - 1.0) * coverage);
    return esc / (yield + esc);
}

double weighted_dl(double yield, double theta) {
    check_yield(yield);
    check_coverage(theta);
    return 1.0 - std::pow(yield, 1.0 - theta);
}

double ProposedModel::theta_of_coverage(double coverage) const {
    check_coverage(coverage);
    return theta_max * (1.0 - std::pow(1.0 - coverage, r));
}

double ProposedModel::dl(double coverage) const {
    check_yield(yield);
    return 1.0 - std::pow(yield, 1.0 - theta_of_coverage(coverage));
}

double ProposedModel::residual_dl() const {
    check_yield(yield);
    return 1.0 - std::pow(yield, 1.0 - theta_max);
}

double ProposedModel::required_coverage(double dl_target) const {
    check_yield(yield);
    if (std::isnan(dl_target))
        throw std::domain_error("dl_target must not be NaN");
    if (yield == 1.0) return 0.0;
    const double floor = residual_dl();
    if (dl_target < floor)
        throw std::domain_error(
            "target DL below the residual defect level of this test method");
    // Any target at or above the zero-coverage DL (which includes every
    // dl_target >= 1) needs no testing at all.
    if (dl_target >= williams_brown_dl(yield, 0.0)) return 0.0;
    // Invert eq (11): theta = 1 - ln(1-dl)/ln(Y), then eq (9) for T.
    const double theta = 1.0 - std::log(1.0 - dl_target) / std::log(yield);
    const double inner = 1.0 - theta / theta_max;  // (1-T)^R
    if (inner <= 0.0) return 1.0;
    return clamp01(1.0 - std::pow(inner, 1.0 / r));
}

}  // namespace dlp::model
