// Random-test coverage growth laws (Williams' test-length model) and
// susceptibility estimation from measured coverage curves.
//
// The paper (eqs 7-8) models coverage under k random vectors as
//   T(k)     = 1 - e^{-ln(k)/ln(s_T)}            = 1 - k^{-1/ln(s_T)}
//   theta(k) = theta_max * (1 - k^{-1/ln(s_theta)})
// where s is the *fault susceptibility* of the fault set: a larger s means a
// harder-to-detect set (a longer test is needed for the same coverage).
// Eliminating k yields eq (9) with the susceptibility ratio
//   R = ln(s_T) / ln(s_theta)                      (eq 10)
// so easier realistic faults (s_theta < s_T) give R > 1.
#pragma once

#include <span>
#include <vector>

namespace dlp::model {

/// A point on a measured coverage curve: coverage after the first k vectors.
struct CoveragePoint {
    double k = 1.0;         ///< number of vectors applied (>= 1)
    double coverage = 0.0;  ///< coverage in [0,1]
};

/// Coverage growth law of eqs (7)-(8).
/// With saturation = 1 this is exactly eq (7); otherwise eq (8).
struct CoverageLaw {
    double susceptibility = 2.0;  ///< s > 1
    double saturation = 1.0;      ///< theta_max (1 for the stuck-at set)

    /// Coverage after k random vectors (k >= 1).
    double coverage(double k) const;

    /// Number of vectors needed to reach the given coverage.
    /// Throws std::domain_error if coverage >= saturation (unreachable).
    double vectors_for(double coverage) const;
};

/// Least-squares estimate of a CoverageLaw from a measured curve.
///
/// With fit_saturation = false the saturation is pinned to 1 (stuck-at
/// curves); otherwise both parameters are fitted.  Points with k < 2 or
/// coverage <= 0 are ignored (the law passes through (1, 0) by construction).
CoverageLaw fit_coverage_law(std::span<const CoveragePoint> points,
                             bool fit_saturation);

/// Susceptibility ratio of eq (10): R = ln(s_T)/ln(s_theta).
double susceptibility_ratio(double s_stuck_at, double s_realistic);

}  // namespace dlp::model
