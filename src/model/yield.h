// Yield models and fault-weight arithmetic (eqs 4-6 of the paper).
//
// Each extracted fault j carries a weight w_j = A_j * D_j (critical area x
// defect density), which is the average number of defects inducing that
// fault.  Then
//   p_j   = 1 - e^{-w_j}                   (inverse of eq 4)
//   Y     = e^{-sum_j w_j}                 (eq 5, Poisson yield)
//   theta = sum_{detected} w_j / sum_j w_j (eq 6)
#pragma once

#include <span>

namespace dlp::model {

/// Fault weight from an occurrence probability, eq (4): w = -ln(1-p).
double weight_from_probability(double p);

/// Occurrence probability from a fault weight: p = 1 - e^{-w}.
double probability_from_weight(double w);

/// Poisson yield from the total fault weight, eq (5): Y = e^{-sum w}.
double poisson_yield(double total_weight);

/// Total weight that produces a given Poisson yield (inverse of eq 5).
double total_weight_for_yield(double yield);

/// Stapper negative-binomial yield with clustering parameter alpha:
///   Y = (1 + lambda/alpha)^{-alpha},  lambda = mean defect (weight) count.
/// As alpha -> infinity this tends to the Poisson yield e^{-lambda}.
double stapper_yield(double lambda, double alpha);

/// Weighted coverage of eq (6) given per-fault weights and detection flags.
/// @param weights   w_j for every fault in the set
/// @param detected  same length; true if fault j is detected
double weighted_coverage(std::span<const double> weights,
                         std::span<const bool> detected);

/// Unweighted coverage Gamma: detected count / total count.
double unweighted_coverage(std::span<const bool> detected);

/// Scale factor that rescales all weights so that the Poisson yield becomes
/// `target_yield` (the paper scales c432 to Y = 0.75: "a different size but
/// the same testability features").
double yield_scale_factor(double current_total_weight, double target_yield);

}  // namespace dlp::model
