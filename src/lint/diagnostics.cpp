#include "lint/diagnostics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace dlp::lint {

std::string_view severity_name(Severity severity) {
    switch (severity) {
        case Severity::Info: return "info";
        case Severity::Warning: return "warning";
        case Severity::Error: return "error";
    }
    return "?";
}

SuppressionSet::SuppressionSet(std::string_view config) {
    std::string token;
    const auto flush = [&] {
        if (token.empty()) return;
        if (token.front() == '-') token.erase(0, 1);
        if (!token.empty()) {
            if (token.back() == '*')
                prefixes_.push_back(token.substr(0, token.size() - 1));
            else
                exact_.push_back(token);
        }
        token.clear();
    };
    for (char c : config) {
        if (c == ',' || c == ';' || c == ' ' || c == '\t' || c == '\n')
            flush();
        else
            token.push_back(c);
    }
    flush();
}

bool SuppressionSet::suppresses(std::string_view check) const {
    if (std::find(exact_.begin(), exact_.end(), check) != exact_.end())
        return true;
    return std::any_of(prefixes_.begin(), prefixes_.end(),
                       [&](const std::string& p) {
                           return check.substr(0, p.size()) == p;
                       });
}

void DiagnosticEngine::report(Severity severity, std::string_view check,
                              std::string message, SourceLoc loc,
                              std::string object) {
    if (suppress_.suppresses(check)) {
        ++suppressed_;
        return;
    }
    ++counts_[static_cast<std::size_t>(severity)];
    diags_.push_back({severity, std::string(check), std::move(object),
                      std::move(message), std::move(loc)});
}

std::string render_text(std::span<const Diagnostic> diagnostics) {
    std::ostringstream out;
    for (const Diagnostic& d : diagnostics) {
        if (!d.loc.file.empty()) out << d.loc.file << ":";
        if (d.loc.has_line()) out << d.loc.line << ":";
        if (!d.loc.file.empty() || d.loc.has_line()) out << " ";
        out << severity_name(d.severity) << ": [" << d.check << "] "
            << d.message << "\n";
    }
    return out.str();
}

namespace {

void json_escape(std::ostringstream& out, std::string_view s) {
    out << '"';
    for (char raw : s) {
        const auto c = static_cast<unsigned char>(raw);
        switch (c) {
            case '"': out << "\\\""; break;
            case '\\': out << "\\\\"; break;
            case '\n': out << "\\n"; break;
            case '\r': out << "\\r"; break;
            case '\t': out << "\\t"; break;
            default:
                if (c < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out << buf;
                } else {
                    out << raw;
                }
        }
    }
    out << '"';
}

}  // namespace

std::string render_json(std::span<const Diagnostic> diagnostics) {
    std::size_t counts[3] = {0, 0, 0};
    std::ostringstream out;
    out << "{\"diagnostics\": [";
    bool first = true;
    for (const Diagnostic& d : diagnostics) {
        ++counts[static_cast<std::size_t>(d.severity)];
        if (!first) out << ", ";
        first = false;
        out << "{\"check\": ";
        json_escape(out, d.check);
        out << ", \"severity\": ";
        json_escape(out, severity_name(d.severity));
        out << ", \"object\": ";
        json_escape(out, d.object);
        out << ", \"message\": ";
        json_escape(out, d.message);
        out << ", \"file\": ";
        json_escape(out, d.loc.file);
        out << ", \"line\": " << d.loc.line << "}";
    }
    out << "], \"counts\": {\"error\": "
        << counts[static_cast<std::size_t>(Severity::Error)]
        << ", \"warning\": "
        << counts[static_cast<std::size_t>(Severity::Warning)]
        << ", \"info\": " << counts[static_cast<std::size_t>(Severity::Info)]
        << "}}";
    return out.str();
}

std::string summary_line(const DiagnosticEngine& engine) {
    std::ostringstream out;
    const auto plural = [](std::size_t n) { return n == 1 ? "" : "s"; };
    out << engine.errors() << " error" << plural(engine.errors()) << ", "
        << engine.warnings() << " warning" << plural(engine.warnings())
        << ", " << engine.infos() << " info";
    if (engine.suppressed() > 0)
        out << " (" << engine.suppressed() << " suppressed)";
    return out.str();
}

}  // namespace dlp::lint
