// Diagnostic engine for the static-analysis subsystem (`dlproj-lint`).
//
// A Diagnostic is one finding of one check: a stable check id
// ("net-undriven", "rules-overlapping-bins", ...), a severity, a free-form
// message, the object it concerns (a net, fault or rules directive) and a
// source location when the artifact came from a file.  The engine collects
// findings, applies per-check suppression, and keeps severity counts; the
// renderers turn a finding list into human-readable text
// ("file:line: error: [check] message") or a machine-readable JSON
// document.
//
// Check ids are part of the public interface: tests, suppression strings
// and CI greps rely on them, so they never change once shipped.  The full
// catalogue lives in docs/LINT.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace dlp::lint {

enum class Severity : std::uint8_t {
    Info = 0,
    Warning = 1,
    Error = 2,
};

/// "info", "warning", "error".
std::string_view severity_name(Severity severity);

/// Where a finding points.  line 0 means "no line information" (in-memory
/// artifacts); an empty file means the artifact was not loaded from disk.
struct SourceLoc {
    std::string file;
    int line = 0;

    bool has_line() const { return line > 0; }
};

/// One finding.
struct Diagnostic {
    Severity severity = Severity::Warning;
    std::string check;    ///< stable check id (docs/LINT.md)
    std::string object;   ///< net / fault / directive the finding concerns
    std::string message;
    SourceLoc loc;
};

/// Per-check suppression, parsed from a config string: check ids separated
/// by commas, semicolons or whitespace; a trailing '*' suppresses every
/// check sharing the prefix ("rules-*").  A leading '-' on a token is
/// accepted and ignored ("-fanin-excessive" == "fanin-excessive").
class SuppressionSet {
public:
    SuppressionSet() = default;
    explicit SuppressionSet(std::string_view config);

    bool suppresses(std::string_view check) const;
    bool empty() const { return exact_.empty() && prefixes_.empty(); }

private:
    std::vector<std::string> exact_;
    std::vector<std::string> prefixes_;  ///< without the trailing '*'
};

/// Collects diagnostics from the check sweeps (src/lint/checks.h).
/// Suppressed checks are dropped at report() time (they do not count);
/// everything else accumulates in report order.
class DiagnosticEngine {
public:
    DiagnosticEngine() = default;
    explicit DiagnosticEngine(SuppressionSet suppress)
        : suppress_(std::move(suppress)) {}

    /// Records a finding unless its check is suppressed.
    void report(Severity severity, std::string_view check,
                std::string message, SourceLoc loc = {},
                std::string object = {});

    const std::vector<Diagnostic>& diagnostics() const { return diags_; }
    std::size_t count(Severity severity) const {
        return counts_[static_cast<std::size_t>(severity)];
    }
    std::size_t errors() const { return count(Severity::Error); }
    std::size_t warnings() const { return count(Severity::Warning); }
    std::size_t infos() const { return count(Severity::Info); }
    /// Findings dropped by the suppression set.
    std::size_t suppressed() const { return suppressed_; }

    /// True when no error-severity finding was recorded.
    bool ok() const { return errors() == 0; }

private:
    SuppressionSet suppress_;
    std::vector<Diagnostic> diags_;
    std::size_t counts_[3] = {0, 0, 0};
    std::size_t suppressed_ = 0;
};

/// Compiler-style text, one line per finding:
///   "bad.bench:4: error: [net-undriven] net 'b' ..." (location parts
/// omitted when absent).  Ends with a trailing newline unless empty.
std::string render_text(std::span<const Diagnostic> diagnostics);

/// Machine-readable JSON document:
///   {"diagnostics": [{"check": ..., "severity": ..., "object": ...,
///     "message": ..., "file": ..., "line": ...}, ...],
///    "counts": {"error": E, "warning": W, "info": I}}
/// Strings are escaped per RFC 8259; the document always parses.
std::string render_json(std::span<const Diagnostic> diagnostics);

/// "2 errors, 1 warning, 0 info" — for CLI/example summaries.
std::string summary_line(const DiagnosticEngine& engine);

}  // namespace dlp::lint
