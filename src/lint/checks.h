// The static-analysis sweeps (`dlproj-lint`): structural checks over the
// artifacts the experiment pipeline consumes, run before anything is
// simulated.  The motivation is the paper's eq. (11): the DL projection is
// only as trustworthy as its inputs — an undriven net, a dead logic cone
// or an overlapping defect-size bin silently skews Y, theta and the fitted
// R/theta_max.  These checks make such inputs fail fast with an actionable
// diagnostic instead of producing a wrong curve after hours of simulation.
//
// Four sweeps, one per artifact kind:
//   * lint_bench_text: a lenient scan of raw `.bench` source (the strict
//     parser stops at the first problem; the linter keeps going and
//     reports every finding with its line).
//   * lint_circuit: reachability/observability over the in-memory Circuit,
//     reusing the SCOAP measures from src/atpg/scoap.h — a net with
//     infinite observability bounds the attainable coverage structurally.
//   * lint_rules: the defect rule deck (size-bin overlap/normalization,
//     in-memory value sanity the file parser cannot see).
//   * lint_faults: cross-validates that equivalence collapsing preserved
//     the class structure (exactly one representative per class — lost or
//     duplicated classes skew every weighted coverage number) and flags
//     structurally untestable faults.
//
// The check-id catalogue, severities and suppression syntax are documented
// in docs/LINT.md.
#pragma once

#include <span>
#include <stdexcept>
#include <string>

#include "analysis/untestable.h"
#include "extract/defect_stats.h"
#include "gatesim/faults.h"
#include "lint/diagnostics.h"
#include "netlist/circuit.h"

namespace dlp::lint {

struct LintOptions {
    /// Suppression config string (see SuppressionSet): check ids separated
    /// by commas/whitespace, trailing '*' wildcard.
    std::string suppress;
    /// fanin-excessive threshold: gates with more fanin pins are flagged
    /// (wide gates degrade layout and testability).
    int max_fanin = 10;
};

/// Lenient scan of `.bench` source text: net-undriven, net-multi-driven,
/// comb-cycle (iterative DFS over the name graph), output-conflict,
/// bench-syntax.  `file` is used for diagnostic locations only.
void lint_bench_text(const std::string& text, const std::string& file,
                     DiagnosticEngine& engine);

/// Structural checks over an in-memory circuit: output-dangling (error),
/// gate-unreachable, fanin-excessive.  Uses SCOAP observability for the
/// reachability sweep.
void lint_circuit(const netlist::Circuit& circuit, DiagnosticEngine& engine,
                  const LintOptions& options = {});

/// Defect rule-deck checks: rules-overlapping-bins,
/// rules-density-unnormalized, rules-bad-clustering (invalid cluster_*
/// shapes, unnormalized region-fraction maps, degenerate hierarchies).
/// `file` tags diagnostic locations when the deck was loaded from disk.
void lint_rules(const extract::DefectStatistics& stats,
                DiagnosticEngine& engine, const std::string& file = {});

/// Fault-list checks over a collapsed stuck-at list:
/// fault-equivalence-violation (class lost / double-counted / unknown
/// fault) and fault-structurally-untestable (SCOAP-unobservable site).
void lint_faults(const netlist::Circuit& circuit,
                 std::span<const gatesim::StuckAtFault> collapsed,
                 DiagnosticEngine& engine);

/// Redundant-logic sweep (circuit-redundant-logic): proves faults
/// untestable with the static implication engine
/// (analysis::find_untestable) and reports one warning per proof — a
/// proven-untestable line is redundant logic that silently caps the
/// attainable coverage and biases the projected DL.  Much deeper than the
/// SCOAP sweep in lint_faults (which only sees structurally unobservable
/// sites), and correspondingly more expensive, so it is NOT part of
/// lint_circuit or the flow lint gate; dlproj_lint exposes it behind
/// --testability.  `options.budget` bounds the pass.
void lint_redundant_logic(const netlist::Circuit& circuit,
                          std::span<const gatesim::StuckAtFault> collapsed,
                          DiagnosticEngine& engine,
                          const analysis::AnalysisOptions& options = {});

/// Snapshot of an engine after the sweeps ran, as carried by
/// flow::ExperimentResult and LintError.
struct LintReport {
    std::vector<Diagnostic> diagnostics;
    std::size_t errors = 0;
    std::size_t warnings = 0;
    std::size_t infos = 0;
    std::size_t suppressed = 0;

    bool ok() const { return errors == 0; }
};

LintReport make_report(const DiagnosticEngine& engine);

/// Thrown by flow::ExperimentRunner::prepare()/generate_tests() when a
/// lint sweep finds errors; what() is the rendered text, report() the
/// structured findings.
class LintError : public std::runtime_error {
public:
    LintError(const std::string& what, LintReport report)
        : std::runtime_error(what), report_(std::move(report)) {}

    const LintReport& report() const { return report_; }

private:
    LintReport report_;
};

/// The DLPROJ_LINT environment knob: "0"/"off"/"false" (any case) disable
/// the flow-level lint gate; anything else (or unset) leaves it on.
bool lint_enabled_from_env();

}  // namespace dlp::lint
