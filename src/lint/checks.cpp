#include "lint/checks.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <map>
#include <sstream>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "atpg/scoap.h"
#include "support/env.h"

namespace dlp::lint {

namespace {

std::string trim(const std::string& s) {
    size_t a = 0;
    size_t b = s.size();
    while (a < b && std::isspace(static_cast<unsigned char>(s[a]))) ++a;
    while (b > a && std::isspace(static_cast<unsigned char>(s[b - 1]))) --b;
    return s.substr(a, b - a);
}

std::string upper(std::string s) {
    for (char& c : s)
        c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    return s;
}

bool known_gate_type(const std::string& u) {
    return u == "BUF" || u == "BUFF" || u == "NOT" || u == "INV" ||
           u == "AND" || u == "NAND" || u == "OR" || u == "NOR" ||
           u == "XOR" || u == "XNOR";
}

std::string fmt_double(double v) {
    std::ostringstream out;
    out.precision(6);
    out << v;
    return out.str();
}

}  // namespace

void lint_bench_text(const std::string& text, const std::string& file,
                     DiagnosticEngine& engine) {
    struct RawGate {
        std::string out;
        std::vector<std::string> fanin;
        int line = 0;
    };
    std::vector<std::pair<std::string, int>> inputs;
    std::vector<std::pair<std::string, int>> outputs;
    std::vector<RawGate> gates;

    const auto syntax = [&](int line, const std::string& what) {
        engine.report(Severity::Error, "bench-syntax", what, {file, line});
    };

    // Lenient line scan: a malformed line is reported and skipped, so one
    // bad line does not hide findings further down (unlike the strict
    // parser, which throws at the first).
    std::istringstream in(text);
    std::string line_text;
    int line_no = 0;
    while (std::getline(in, line_text)) {
        ++line_no;
        const size_t hash = line_text.find('#');
        if (hash != std::string::npos) line_text.erase(hash);
        const std::string line = trim(line_text);
        if (line.empty()) continue;

        const size_t eq = line.find('=');
        if (eq == std::string::npos) {
            const size_t lp = line.find('(');
            const size_t rp = line.rfind(')');
            if (lp == std::string::npos || rp == std::string::npos ||
                rp < lp) {
                syntax(line_no, "expected INPUT(...) or OUTPUT(...)");
                continue;
            }
            const std::string kw = upper(trim(line.substr(0, lp)));
            const std::string arg = trim(line.substr(lp + 1, rp - lp - 1));
            if (arg.empty()) {
                syntax(line_no, "empty net name");
                continue;
            }
            if (kw == "INPUT")
                inputs.emplace_back(arg, line_no);
            else if (kw == "OUTPUT")
                outputs.emplace_back(arg, line_no);
            else
                syntax(line_no, "unknown directive '" + kw + "'");
            continue;
        }

        RawGate g;
        g.line = line_no;
        g.out = trim(line.substr(0, eq));
        const std::string rhs = trim(line.substr(eq + 1));
        const size_t lp = rhs.find('(');
        const size_t rp = rhs.rfind(')');
        if (g.out.empty() || lp == std::string::npos ||
            rp == std::string::npos || rp < lp) {
            syntax(line_no, "expected '<net> = TYPE(a, b, ...)'");
            continue;
        }
        const std::string type = upper(trim(rhs.substr(0, lp)));
        if (!known_gate_type(type)) {
            syntax(line_no, "unknown gate type '" + trim(rhs.substr(0, lp)) +
                            "'");
            continue;
        }
        std::string args = rhs.substr(lp + 1, rp - lp - 1);
        std::string token;
        std::istringstream as(args);
        bool bad = false;
        while (std::getline(as, token, ',')) {
            token = trim(token);
            if (token.empty()) {
                syntax(line_no, "empty fanin name");
                bad = true;
                break;
            }
            g.fanin.push_back(token);
        }
        if (bad) continue;
        if (g.fanin.empty()) {
            syntax(line_no, "gate with no fanin");
            continue;
        }
        gates.push_back(std::move(g));
    }

    // Drivers: every INPUT declaration and every gate output.  A second
    // driver of either kind is a conflict.
    std::unordered_map<std::string, int> driver_line;
    for (const auto& [name, line] : inputs) {
        const auto [it, inserted] = driver_line.emplace(name, line);
        if (!inserted)
            engine.report(Severity::Error, "net-multi-driven",
                          "net '" + name + "' declared INPUT twice (first at "
                          "line " + std::to_string(it->second) + ")",
                          {file, line}, name);
    }
    for (const RawGate& g : gates) {
        const auto [it, inserted] = driver_line.emplace(g.out, g.line);
        if (!inserted)
            engine.report(Severity::Error, "net-multi-driven",
                          "net '" + g.out + "' driven more than once (first "
                          "driver at line " + std::to_string(it->second) +
                          ")",
                          {file, g.line}, g.out);
    }

    // OUTPUT declarations: duplicates and INPUT/OUTPUT feedthroughs.
    {
        std::unordered_map<std::string, int> input_line(inputs.begin(),
                                                        inputs.end());
        std::unordered_map<std::string, int> out_line;
        for (const auto& [name, line] : outputs) {
            const auto [it, inserted] = out_line.emplace(name, line);
            if (!inserted) {
                engine.report(Severity::Error, "output-conflict",
                              "duplicate OUTPUT(" + name + ") (first at "
                              "line " + std::to_string(it->second) + ")",
                              {file, line}, name);
                continue;
            }
            if (const auto in_it = input_line.find(name);
                in_it != input_line.end())
                engine.report(Severity::Error, "output-conflict",
                              "net '" + name + "' declared both INPUT (line " +
                              std::to_string(in_it->second) +
                              ") and OUTPUT; feedthrough outputs carry no "
                              "logic and break the physical flow",
                              {file, line}, name);
        }
    }

    // Undriven references (one finding per net name).
    std::unordered_set<std::string> reported_undriven;
    for (const RawGate& g : gates)
        for (const std::string& f : g.fanin)
            if (!driver_line.count(f) && reported_undriven.insert(f).second)
                engine.report(Severity::Error, "net-undriven",
                              "net '" + f + "' read by '" + g.out +
                              "' has no driver (not a gate output or INPUT)",
                              {file, g.line}, f);
    for (const auto& [name, line] : outputs)
        if (!driver_line.count(name) &&
            reported_undriven.insert(name).second)
            engine.report(Severity::Error, "net-undriven",
                          "OUTPUT(" + name + ") has no driver",
                          {file, line}, name);

    // Combinational cycles: iterative DFS over the gate dependency graph
    // (edge gate -> fanin gate).  Each back edge reports one cycle with its
    // full path; cross/forward edges into finished nodes are skipped.
    std::unordered_map<std::string, size_t> gate_index;
    for (size_t i = 0; i < gates.size(); ++i)
        gate_index.emplace(gates[i].out, i);
    enum : std::uint8_t { kWhite, kGray, kBlack };
    std::vector<std::uint8_t> color(gates.size(), kWhite);
    struct Frame {
        size_t gate;
        size_t next_fanin;
    };
    for (size_t root = 0; root < gates.size(); ++root) {
        if (color[root] != kWhite) continue;
        std::vector<Frame> stack{{root, 0}};
        std::vector<size_t> path{root};
        color[root] = kGray;
        while (!stack.empty()) {
            Frame& top = stack.back();
            if (top.next_fanin >= gates[top.gate].fanin.size()) {
                color[top.gate] = kBlack;
                stack.pop_back();
                path.pop_back();
                continue;
            }
            const std::string& fname = gates[top.gate].fanin[top.next_fanin++];
            const auto it = gate_index.find(fname);
            if (it == gate_index.end()) continue;  // INPUT or undriven
            const size_t next = it->second;
            if (color[next] == kWhite) {
                color[next] = kGray;
                stack.push_back({next, 0});
                path.push_back(next);
            } else if (color[next] == kGray) {
                // Back edge: the cycle is the path suffix starting at next.
                const auto start =
                    std::find(path.begin(), path.end(), next);
                std::string cyc;
                for (auto p = start; p != path.end(); ++p) {
                    if (!cyc.empty()) cyc += " -> ";
                    cyc += gates[*p].out;
                }
                cyc += " -> " + gates[next].out;
                engine.report(Severity::Error, "comb-cycle",
                              "combinational cycle: " + cyc,
                              {file, gates[top.gate].line},
                              gates[next].out);
            }
        }
    }
}

void lint_circuit(const netlist::Circuit& circuit, DiagnosticEngine& engine,
                  const LintOptions& options) {
    using netlist::GateType;
    using netlist::NetId;
    const auto fanouts = circuit.fanouts();
    // SCOAP reuse: a net with infinite observability has no structural
    // path to a primary output, so every fault in its cone is statically
    // undetectable — dead logic that still contributes critical area (and
    // therefore weight) to the yield model.
    const atpg::Testability t = atpg::compute_testability(circuit);
    for (NetId n = 0; n < circuit.gate_count(); ++n) {
        const netlist::Gate& g = circuit.gate(n);
        if (fanouts[n].empty() && !circuit.is_output(n)) {
            engine.report(Severity::Error, "output-dangling",
                          "net '" + g.name + "' (" +
                          netlist::gate_type_name(g.type) +
                          ") drives nothing and is not a primary output; "
                          "its faults are undetectable but its critical "
                          "area still counts toward Y",
                          {}, g.name);
        } else if (t.co[n] >= atpg::kScoapInfinite) {
            engine.report(Severity::Warning, "gate-unreachable",
                          "no primary output is reachable from net '" +
                          g.name + "'; its logic cone is dead and bounds "
                          "the attainable coverage",
                          {}, g.name);
        }
        if (g.type != GateType::Input &&
            static_cast<int>(g.fanin.size()) > options.max_fanin)
            engine.report(Severity::Warning, "fanin-excessive",
                          "gate '" + g.name + "' has " +
                          std::to_string(g.fanin.size()) + " fanin pins "
                          "(limit " + std::to_string(options.max_fanin) +
                          "); run techmap to lower the arity before "
                          "layout",
                          {}, g.name);
    }
}

void lint_rules(const extract::DefectStatistics& stats,
                DiagnosticEngine& engine, const std::string& file) {
    const auto invalid = [](double v) {
        return !std::isfinite(v) || v < 0.0;
    };
    // Value sanity: in-memory decks bypass the rules parser's checks.
    if (!std::isfinite(stats.x0) || stats.x0 <= 0.0)
        engine.report(Severity::Error, "rules-density-unnormalized",
                      "x0 (minimum spot diameter) must be positive and "
                      "finite, got " + fmt_double(stats.x0),
                      {file, 0}, "x0");
    for (int li = 0; li < cell::kLayerCount; ++li) {
        const auto layer = static_cast<cell::Layer>(li);
        const std::string name = cell::layer_name(layer);
        if (invalid(stats.short_density[li]))
            engine.report(Severity::Error, "rules-density-unnormalized",
                          "short density for layer '" + name +
                          "' is negative or non-finite",
                          {file, 0}, "short " + name);
        if (invalid(stats.open_density[li]))
            engine.report(Severity::Error, "rules-density-unnormalized",
                          "open density for layer '" + name +
                          "' is negative or non-finite",
                          {file, 0}, "open " + name);
    }
    if (invalid(stats.contact_open_density))
        engine.report(Severity::Error, "rules-density-unnormalized",
                      "contact_open density is negative or non-finite",
                      {file, 0}, "contact_open");
    if (invalid(stats.pinhole_density))
        engine.report(Severity::Error, "rules-density-unnormalized",
                      "pinhole density is negative or non-finite",
                      {file, 0}, "pinhole");

    // Size bins: a measured histogram refining the closed-form p(x)
    // density.  Bins must be valid intervals, must not overlap, and their
    // probability mass should be normalized — an overlap double-counts a
    // diameter band, which skews every weight downstream.
    using Bin = extract::DefectStatistics::SizeBin;
    std::vector<const Bin*> bins;
    bins.reserve(stats.size_bins.size());
    for (const Bin& b : stats.size_bins) {
        if (!std::isfinite(b.lo) || !std::isfinite(b.hi) ||
            !std::isfinite(b.prob) || b.hi <= b.lo || b.prob < 0.0) {
            engine.report(Severity::Error, "rules-density-unnormalized",
                          "sizebin [" + fmt_double(b.lo) + ", " +
                          fmt_double(b.hi) + ") with probability " +
                          fmt_double(b.prob) + " is not a valid bin",
                          {file, b.line}, "sizebin");
            continue;
        }
        bins.push_back(&b);
    }
    std::sort(bins.begin(), bins.end(),
              [](const Bin* a, const Bin* b) { return a->lo < b->lo; });
    for (size_t i = 1; i < bins.size(); ++i)
        if (bins[i]->lo < bins[i - 1]->hi)
            engine.report(Severity::Error, "rules-overlapping-bins",
                          "sizebin [" + fmt_double(bins[i]->lo) + ", " +
                          fmt_double(bins[i]->hi) + ") overlaps [" +
                          fmt_double(bins[i - 1]->lo) + ", " +
                          fmt_double(bins[i - 1]->hi) +
                          ") — the shared diameter band is double-counted",
                          {file, bins[i]->line}, "sizebin");
    if (!stats.size_bins.empty()) {
        double sum = 0.0;
        for (const Bin& b : stats.size_bins) sum += b.prob;
        if (std::isfinite(sum) && std::fabs(sum - 1.0) > 1e-6)
            engine.report(Severity::Warning, "rules-density-unnormalized",
                          "size-bin probability mass sums to " +
                          fmt_double(sum) +
                          ", expected 1; the extractor does not "
                          "renormalize",
                          {file, 0}, "sizebin");
    }

    // Clustering directives (cluster_alpha / cluster_wafer / cluster_die /
    // cluster_region): the shapes feed the clustered DL projections in
    // model/defect_stats_model.h, so a bad shape or an unnormalized region
    // map skews yield and DL exactly like an unnormalized size histogram.
    // In-memory decks bypass the parser's structural checks entirely.
    {
        using Kind = model::DefectStatsModel::Kind;
        const model::DefectStatsModel& c = stats.clustering;
        const int line = stats.clustering_line;
        const auto bad_shape = [](double a) {
            return !std::isfinite(a) || a < 0.0;
        };
        const auto report_shape = [&](const std::string& what, double a) {
            if (bad_shape(a))
                engine.report(Severity::Error, "rules-bad-clustering",
                              what + " clustering shape " + fmt_double(a) +
                              " is negative or non-finite",
                              {file, line}, what);
            else if (a > 0.0 && a < 1e-2)
                engine.report(Severity::Warning, "rules-bad-clustering",
                              what + " clustering shape " + fmt_double(a) +
                              " is implausibly small (< 0.01): nearly all "
                              "defects land on a vanishing fraction of "
                              "dies; check for a unit slip",
                              {file, line}, what);
        };
        if (c.kind == Kind::NegBin) {
            if (!std::isfinite(c.alpha) || c.alpha <= 0.0)
                engine.report(Severity::Error, "rules-bad-clustering",
                              "cluster_alpha must be positive and finite, "
                              "got " + fmt_double(c.alpha),
                              {file, line}, "cluster_alpha");
            else
                report_shape("cluster_alpha", c.alpha);
        } else if (c.kind == Kind::Hierarchical) {
            report_shape("cluster_wafer", c.wafer_alpha);
            report_shape("cluster_die", c.die_alpha);
            double fraction_sum = 0.0;
            bool fractions_ok = !c.regions.empty();
            for (const model::RegionDensity& region : c.regions) {
                report_shape("cluster_region", region.alpha);
                if (!std::isfinite(region.fraction) ||
                    region.fraction <= 0.0 || region.fraction > 1.0) {
                    engine.report(Severity::Error, "rules-bad-clustering",
                                  "cluster_region fraction " +
                                  fmt_double(region.fraction) +
                                  " is outside (0, 1]",
                                  {file, line}, "cluster_region");
                    fractions_ok = false;
                    continue;
                }
                fraction_sum += region.fraction;
            }
            if (fractions_ok && std::fabs(fraction_sum - 1.0) > 1e-6)
                engine.report(Severity::Error, "rules-bad-clustering",
                              "cluster_region fractions sum to " +
                              fmt_double(fraction_sum) +
                              ", expected 1; the region map must "
                              "partition the die area",
                              {file, line}, "cluster_region");
            if (!bad_shape(c.wafer_alpha) && !bad_shape(c.die_alpha) &&
                c.wafer_alpha == 0.0 && c.die_alpha == 0.0) {
                bool any_region_mixing = false;
                for (const model::RegionDensity& region : c.regions)
                    any_region_mixing |= region.alpha > 0.0;
                if (!any_region_mixing)
                    engine.report(
                        Severity::Warning, "rules-bad-clustering",
                        "hierarchical clustering with every shape "
                        "disabled is exactly Poisson; drop the cluster_* "
                        "directives or give some level a finite shape",
                        {file, line}, "cluster_region");
            }
        }
    }
}

void lint_faults(const netlist::Circuit& circuit,
                 std::span<const gatesim::StuckAtFault> collapsed,
                 DiagnosticEngine& engine) {
    using gatesim::StuckAtFault;
    using netlist::NetId;
    const auto universe = gatesim::full_fault_universe(circuit);
    const auto cls = gatesim::equivalence_classes(circuit, universe);
    const size_t nclasses =
        cls.empty() ? 0 : *std::max_element(cls.begin(), cls.end()) + 1;

    using Key = std::tuple<NetId, NetId, int, bool>;
    const auto key = [](const StuckAtFault& f) {
        return Key{f.net, f.reader, f.pin, f.stuck_value};
    };
    std::map<Key, size_t> index;
    for (size_t i = 0; i < universe.size(); ++i) index[key(universe[i])] = i;

    constexpr size_t kNone = static_cast<size_t>(-1);
    std::vector<size_t> first_member(nclasses, kNone);
    for (size_t i = 0; i < universe.size(); ++i)
        if (first_member[cls[i]] == kNone) first_member[cls[i]] = i;

    // Class preservation: the collapsed list must hold exactly one
    // representative per equivalence class.  A lost class silently drops
    // its weight from every coverage ratio; a duplicated one counts it
    // twice.  Both skew theta(k) and the fitted R/theta_max.
    std::vector<int> count(nclasses, 0);
    for (const StuckAtFault& f : collapsed) {
        const auto it = index.find(key(f));
        if (it == index.end()) {
            engine.report(Severity::Error, "fault-equivalence-violation",
                          "fault " + gatesim::fault_name(circuit, f) +
                          " is not in the structural fault universe",
                          {}, gatesim::fault_name(circuit, f));
            continue;
        }
        ++count[cls[it->second]];
    }
    for (size_t c = 0; c < nclasses; ++c) {
        if (count[c] == 1) continue;
        const std::string repr =
            gatesim::fault_name(circuit, universe[first_member[c]]);
        if (count[c] == 0)
            engine.report(Severity::Error, "fault-equivalence-violation",
                          "equivalence class of " + repr +
                          " has no representative in the collapsed list "
                          "(class weight lost)",
                          {}, repr);
        else
            engine.report(Severity::Error, "fault-equivalence-violation",
                          "equivalence class of " + repr + " has " +
                          std::to_string(count[c]) +
                          " representatives (class weight double-counted)",
                          {}, repr);
    }

    // Structural testability: a fault whose site cannot be observed at any
    // primary output is undetectable by any vector set, so it bounds
    // theta_max before a single vector is simulated.
    const atpg::Testability t = atpg::compute_testability(circuit);
    size_t untestable = 0;
    for (const StuckAtFault& f : collapsed) {
        const NetId site = f.is_stem() ? f.net : f.reader;
        if (site >= t.co.size() || t.co[site] < atpg::kScoapInfinite)
            continue;
        ++untestable;
        engine.report(Severity::Warning, "fault-structurally-untestable",
                      "fault " + gatesim::fault_name(circuit, f) +
                      " is statically undetectable (site unobservable at "
                      "every primary output)",
                      {}, gatesim::fault_name(circuit, f));
    }
    if (untestable > 0 && !collapsed.empty()) {
        const double bound =
            1.0 - static_cast<double>(untestable) /
                      static_cast<double>(collapsed.size());
        engine.report(Severity::Info, "fault-structurally-untestable",
                      std::to_string(untestable) + " of " +
                      std::to_string(collapsed.size()) +
                      " collapsed faults are structurally untestable; "
                      "attainable coverage is bounded at " +
                      fmt_double(100.0 * bound) + "%");
    }
}

void lint_redundant_logic(const netlist::Circuit& circuit,
                          std::span<const gatesim::StuckAtFault> collapsed,
                          DiagnosticEngine& engine,
                          const analysis::AnalysisOptions& options) {
    const analysis::AnalysisResult result =
        analysis::find_untestable(circuit, collapsed, options);
    for (const analysis::UntestableProof& proof : result.proofs)
        engine.report(Severity::Warning, "circuit-redundant-logic",
                      analysis::proof_summary(circuit, proof) +
                      "; the line is redundant logic (removable without "
                      "changing any output)",
                      {}, gatesim::fault_name(circuit, proof.fault));
    if (result.stats.proofs > 0 && !collapsed.empty())
        engine.report(Severity::Info, "circuit-redundant-logic",
                      std::to_string(result.stats.proofs) + " of " +
                      std::to_string(collapsed.size()) +
                      " collapsed faults proven untestable by static "
                      "implication analysis (" +
                      std::to_string(result.stats.constant_lines) +
                      " constant lines)");
    if (result.stop != support::StopReason::None)
        engine.report(Severity::Info, "circuit-redundant-logic",
                      "analysis interrupted (" +
                      std::string(support::stop_reason_name(result.stop)) +
                      ") after " +
                      std::to_string(result.stats.pivots_done) + " of " +
                      std::to_string(result.stats.pivots_total) +
                      " pivots; findings cover the completed prefix");
}

LintReport make_report(const DiagnosticEngine& engine) {
    return {engine.diagnostics(), engine.errors(), engine.warnings(),
            engine.infos(), engine.suppressed()};
}

bool lint_enabled_from_env() {
    // Recognized off-spellings disable the gate; garbage ("fale", "-1")
    // throws support::EnvError instead of silently leaving the gate on.
    return support::env_flag("DLPROJ_LINT", true);
}

}  // namespace dlp::lint
