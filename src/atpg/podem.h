// PODEM (Path-Oriented DEcision Making) deterministic test generation for
// single stuck-at faults, with SCOAP-guided backtrace and X-path checks.
//
// The paper's experiment uses random vectors followed by deterministically
// generated ones (FAN in the original); PODEM fills the same role here:
// a complete branch-and-bound ATPG that either finds a test, proves the
// fault redundant, or aborts on a backtrack limit.
#pragma once

#include <cstdint>
#include <optional>

#include "atpg/scoap.h"
#include "gatesim/fault_sim.h"
#include "support/cancel.h"

namespace dlp::atpg {

using gatesim::StuckAtFault;
using gatesim::Vector;

/// Ternary signal value.
enum class V3 : std::uint8_t { Zero = 0, One = 1, X = 2 };

V3 v3_from_bool(bool b);

struct PodemResult {
    enum class Status {
        TestFound,  ///< `test` detects the fault (X inputs left as given fill)
        Redundant,  ///< search space exhausted: the fault is untestable
        Aborted,    ///< backtrack limit hit before a decision
    };
    Status status = Status::Aborted;
    Vector test;           ///< valid when status == TestFound
    int backtracks = 0;    ///< decisions reverted during the search
    int implications = 0;  ///< imply() passes run (search effort measure)
    /// Why an Aborted search stopped: None means the per-fault backtrack
    /// limit, otherwise the budget's cancel/deadline fired mid-search.
    support::StopReason stop = support::StopReason::None;
};

class Podem {
public:
    /// The circuit must outlive the Podem object; the testability
    /// measures are copied.
    Podem(const Circuit& circuit, Testability testability);

    /// Attempts to generate a test for one fault.  X inputs in the result
    /// are filled with `x_fill` bits (deterministic; callers wanting random
    /// fill pass their own bits).  When a budget is given, its cancel token
    /// and deadline are checked at every backtrack (the unit of search
    /// work); a budget stop aborts the search with `stop` set.
    PodemResult generate(const StuckAtFault& fault, int backtrack_limit,
                         std::uint64_t x_fill = 0,
                         const support::RunBudget* budget = nullptr);

private:
    void imply(const StuckAtFault& fault);
    bool detected() const;
    bool excitation_impossible(const StuckAtFault& fault) const;
    std::optional<std::pair<NetId, V3>> objective(const StuckAtFault& fault);
    std::pair<size_t, V3> backtrace(NetId net, V3 value) const;
    bool x_path_exists(const StuckAtFault& fault) const;

    const Circuit& circuit_;
    Testability testability_;
    std::vector<std::vector<NetId>> fanouts_;
    std::vector<size_t> pi_index_of_net_;  // kNoPi for non-input nets
    std::vector<V3> pi_;                   // current PI assignment
    std::vector<V3> good_;
    std::vector<V3> faulty_;
};

}  // namespace dlp::atpg
