#include "atpg/scoap.h"

#include <algorithm>
#include <limits>
#include <numeric>

namespace dlp::atpg {

namespace {

constexpr int kInf = kScoapInfinite;

int capped_sum(int a, int b) { return std::min(a + b, kInf); }

}  // namespace

Testability compute_testability(const Circuit& circuit) {
    using netlist::GateType;
    const size_t n = circuit.gate_count();
    Testability t;
    t.cc0.assign(n, kInf);
    t.cc1.assign(n, kInf);
    t.co.assign(n, kInf);

    // Controllability: forward pass in topological (NetId) order.
    for (NetId g = 0; g < n; ++g) {
        const auto& gate = circuit.gate(g);
        const auto& in = gate.fanin;
        switch (gate.type) {
            case GateType::Input:
                t.cc0[g] = t.cc1[g] = 1;
                break;
            case GateType::Buf:
                t.cc0[g] = capped_sum(t.cc0[in[0]], 1);
                t.cc1[g] = capped_sum(t.cc1[in[0]], 1);
                break;
            case GateType::Not:
                t.cc0[g] = capped_sum(t.cc1[in[0]], 1);
                t.cc1[g] = capped_sum(t.cc0[in[0]], 1);
                break;
            case GateType::And:
            case GateType::Nand: {
                int all1 = 1;
                int min0 = kInf;
                for (NetId f : in) {
                    all1 = capped_sum(all1, t.cc1[f]);
                    min0 = std::min(min0, t.cc0[f]);
                }
                min0 = capped_sum(min0, 1);
                if (gate.type == GateType::And) {
                    t.cc1[g] = all1;
                    t.cc0[g] = min0;
                } else {
                    t.cc0[g] = all1;
                    t.cc1[g] = min0;
                }
                break;
            }
            case GateType::Or:
            case GateType::Nor: {
                int all0 = 1;
                int min1 = kInf;
                for (NetId f : in) {
                    all0 = capped_sum(all0, t.cc0[f]);
                    min1 = std::min(min1, t.cc1[f]);
                }
                min1 = capped_sum(min1, 1);
                if (gate.type == GateType::Or) {
                    t.cc0[g] = all0;
                    t.cc1[g] = min1;
                } else {
                    t.cc1[g] = all0;
                    t.cc0[g] = min1;
                }
                break;
            }
            case GateType::Xor:
            case GateType::Xnor: {
                // Cheapest parity assignment over all input value patterns
                // is exponential in general; use the standard 2-input
                // formula folded left for wider gates.
                int even = t.cc0[in[0]];
                int odd = t.cc1[in[0]];
                for (size_t i = 1; i < in.size(); ++i) {
                    const int e2 = std::min(capped_sum(even, t.cc0[in[i]]),
                                            capped_sum(odd, t.cc1[in[i]]));
                    const int o2 = std::min(capped_sum(even, t.cc1[in[i]]),
                                            capped_sum(odd, t.cc0[in[i]]));
                    even = e2;
                    odd = o2;
                }
                const int v0 = capped_sum(even, 1);
                const int v1 = capped_sum(odd, 1);
                if (gate.type == GateType::Xor) {
                    t.cc0[g] = v0;
                    t.cc1[g] = v1;
                } else {
                    t.cc0[g] = v1;
                    t.cc1[g] = v0;
                }
                break;
            }
        }
    }

    // Observability: backward pass.
    for (NetId po : circuit.outputs()) t.co[po] = 0;
    for (NetId g = static_cast<NetId>(n); g-- > 0;) {
        const auto& gate = circuit.gate(g);
        if (gate.type == GateType::Input) continue;
        const auto& in = gate.fanin;
        for (size_t pin = 0; pin < in.size(); ++pin) {
            // Cost to observe input `pin`: observe the gate output plus the
            // cost of setting the side inputs to non-controlling values.
            int side = 0;
            switch (gate.type) {
                case GateType::Buf:
                case GateType::Not:
                    break;
                case GateType::And:
                case GateType::Nand:
                    for (size_t j = 0; j < in.size(); ++j)
                        if (j != pin) side = capped_sum(side, t.cc1[in[j]]);
                    break;
                case GateType::Or:
                case GateType::Nor:
                    for (size_t j = 0; j < in.size(); ++j)
                        if (j != pin) side = capped_sum(side, t.cc0[in[j]]);
                    break;
                case GateType::Xor:
                case GateType::Xnor:
                    for (size_t j = 0; j < in.size(); ++j)
                        if (j != pin)
                            side = capped_sum(
                                side, std::min(t.cc0[in[j]], t.cc1[in[j]]));
                    break;
                case GateType::Input:
                    break;
            }
            const int cost = capped_sum(capped_sum(t.co[g], side), 1);
            t.co[in[pin]] = std::min(t.co[in[pin]], cost);
        }
    }
    return t;
}

}  // namespace dlp::atpg
