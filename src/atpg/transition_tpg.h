// Two-pattern test generation for transition (gate-delay) faults.
//
// A transition fault needs an ordered vector pair: v1 initializes the line,
// v2 detects the corresponding stuck-at fault.  The generator runs a random
// phase (consecutive random vectors already form pairs) and then targets
// the leftovers with PODEM: v2 from the stuck-at engine, v1 by line
// justification (random probing first, PODEM excitation as fallback).
#pragma once

#include "atpg/podem.h"
#include "gatesim/transition.h"

namespace dlp::atpg {

struct TransitionTestOptions {
    int random_block = 64;
    int max_random = 2048;
    int stale_blocks = 4;
    std::uint64_t seed = 1;
    int backtrack_limit = 4096;
    int justify_probes = 32;  ///< random tries to justify v1 before PODEM
};

struct TransitionTestResult {
    std::vector<Vector> vectors;  ///< pairs are consecutive in this sequence
    int random_count = 0;
    int pair_count = 0;           ///< deterministic (v1,v2) pairs appended
    std::size_t detected = 0;
    std::size_t untestable = 0;   ///< no two-pattern test exists
    std::size_t aborted = 0;
    std::vector<int> first_detected_at;  ///< per fault (1-based v2 index)

    double coverage() const {
        const std::size_t total = first_detected_at.size();
        const std::size_t testable = total - untestable;
        return testable == 0 ? 0.0
                             : static_cast<double>(detected) /
                                   static_cast<double>(testable);
    }
};

/// Generates a two-pattern test sequence for the given transition faults.
TransitionTestResult generate_transition_tests(
    const netlist::Circuit& circuit,
    std::vector<gatesim::TransitionFault> faults,
    const TransitionTestOptions& options = {});

}  // namespace dlp::atpg
