// Full test-set generation driver: a random-pattern phase (PPSFP with fault
// dropping) followed by deterministic PODEM for the remaining faults,
// mirroring the paper's "first vectors random, last deterministic" setup.
//
// With `ndetect > 1` a third phase tops the set up to an n-detection test
// set (Pomeranz & Reddy): already-detected faults are re-targeted — with
// uniform random, weighted-random, and/or PODEM-generated vectors,
// depending on the mix — until every detected fault has `ndetect` distinct
// detecting vectors (or the sources run dry).  The phase only appends, so
// the n-detect sequence extends the n=1 sequence vector for vector.
#pragma once

#include <cstdint>
#include <vector>

#include <string>
#include <string_view>

#include "atpg/podem.h"
#include "gatesim/engine.h"
#include "parallel/parallel_for.h"
#include "support/cancel.h"

namespace dlp::atpg {

/// Vector-source mix for the n-detection top-up phase (ndetect > 1).
enum class NDetectMix : std::uint8_t {
    Mixed,           ///< random, then weighted-random, then deterministic
    Random,          ///< uniform random blocks only
    WeightedRandom,  ///< input-biased random blocks only
    Deterministic,   ///< PODEM re-targeting only
};

/// Stable lowercase name ("mixed", "random", "weighted", "deterministic").
std::string_view ndetect_mix_name(NDetectMix mix);

/// Inverse of ndetect_mix_name; throws std::invalid_argument naming the
/// accepted values on an unknown name.
NDetectMix parse_ndetect_mix(std::string_view name);

struct TestGenOptions {
    int random_block = 64;     ///< vectors per random batch
    int max_random = 4096;     ///< cap on random vectors
    int stale_blocks = 4;      ///< stop random phase after this many barren batches
    std::uint64_t seed = 1;
    int backtrack_limit = 4096;
    /// Fault-sim engine for the embedded grading (sim::resolve_engine:
    /// "" = DLPROJ_ENGINE, else the registry default).
    std::string engine;
    /// Worker count for the embedded fault simulation (0 = default).
    parallel::ParallelOptions parallel;
    /// n-detection target: 1 generates the classic single-detection set
    /// (bit-identical to the pre-n-detect driver); > 1 appends a top-up
    /// phase until every detected fault has `ndetect` distinct detecting
    /// vectors.  Top-up vectors are deduplicated against the whole set, so
    /// counts reflect distinct tests.
    int ndetect = 1;
    /// Vector sources for the top-up phase (ignored when ndetect <= 1).
    NDetectMix ndetect_mix = NDetectMix::Mixed;
    /// Bounded-execution limits.  The cancel token / deadline are checked
    /// between random blocks, between target faults, and at every PODEM
    /// backtrack; `budget.max_vectors` caps the generated sequence and
    /// `budget.atpg_backtracks` (when > 0) overrides `backtrack_limit`.
    support::RunBudget budget;
    /// Statically proven-untestable marks (parallel to the fault list;
    /// empty = no static analysis).  Marked faults are recorded Redundant
    /// upfront — no PODEM search, no x-fill draw — and excluded from the
    /// embedded simulation, so coverage() (detected / (total - redundant))
    /// is the testability-corrected curve.  Empty marks reproduce the
    /// classic run byte for byte.
    std::vector<std::uint8_t> untestable;
};

/// Final status of one fault after test generation.
enum class FaultStatus : std::uint8_t {
    Detected,
    Redundant,   ///< proven untestable by PODEM
    Aborted,     ///< PODEM hit its backtrack limit
    Undetected,  ///< never targeted (only when a budget stopped the run)
};

struct TestGenResult {
    std::vector<Vector> vectors;     ///< full sequence, random prefix first
    int random_count = 0;            ///< length of the random prefix
    int deterministic_count = 0;     ///< PODEM-generated tail
    std::size_t detected = 0;
    std::size_t redundant = 0;       ///< proven untestable
    std::size_t aborted = 0;         ///< backtrack limit hit
    std::vector<int> first_detected_at;  ///< per fault, 1-based; -1 undetected
    std::vector<FaultStatus> status;     ///< per fault

    // n-detection accounting (trivial when ndetect == 1).
    int ndetect = 1;  ///< the target the set was generated toward
    /// Per fault: detecting vector positions, saturated at `ndetect`.
    std::vector<int> detection_counts;
    /// Per fault: 1-based index where the count reached `ndetect`; -1 below
    /// target.  Equals first_detected_at when ndetect == 1.
    std::vector<int> nth_detected_at;
    int topup_random_count = 0;         ///< uniform-random top-up vectors
    int topup_weighted_count = 0;       ///< weighted-random top-up vectors
    int topup_deterministic_count = 0;  ///< PODEM top-up vectors
    /// Why generation stopped early (None = ran to natural completion).
    /// On a stop, `vectors` is a bit-identical prefix of the sequence an
    /// unbounded run would generate, and untargeted faults stay Undetected.
    support::StopReason stop = support::StopReason::None;
    std::size_t untargeted = 0;  ///< faults never targeted due to the stop

    /// Coverage of testable faults: detected / (total - redundant).
    double coverage() const;
    /// Raw coverage: detected / total.
    double raw_coverage() const;
};

/// Generates a stuck-at test set for the given (typically collapsed) fault
/// list.  Deterministic in `options.seed`.
TestGenResult generate_test_set(const Circuit& circuit,
                                std::vector<StuckAtFault> faults,
                                const TestGenOptions& options = {});

}  // namespace dlp::atpg
