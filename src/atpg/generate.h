// Full test-set generation driver: a random-pattern phase (PPSFP with fault
// dropping) followed by deterministic PODEM for the remaining faults,
// mirroring the paper's "first vectors random, last deterministic" setup.
#pragma once

#include <cstdint>
#include <vector>

#include <string>

#include "atpg/podem.h"
#include "gatesim/engine.h"
#include "parallel/parallel_for.h"
#include "support/cancel.h"

namespace dlp::atpg {

struct TestGenOptions {
    int random_block = 64;     ///< vectors per random batch
    int max_random = 4096;     ///< cap on random vectors
    int stale_blocks = 4;      ///< stop random phase after this many barren batches
    std::uint64_t seed = 1;
    int backtrack_limit = 4096;
    /// Fault-sim engine for the embedded grading (sim::resolve_engine:
    /// "" = DLPROJ_ENGINE, else the registry default).
    std::string engine;
    /// Worker count for the embedded fault simulation (0 = default).
    parallel::ParallelOptions parallel;
    /// Bounded-execution limits.  The cancel token / deadline are checked
    /// between random blocks, between target faults, and at every PODEM
    /// backtrack; `budget.max_vectors` caps the generated sequence and
    /// `budget.atpg_backtracks` (when > 0) overrides `backtrack_limit`.
    support::RunBudget budget;
};

/// Final status of one fault after test generation.
enum class FaultStatus : std::uint8_t {
    Detected,
    Redundant,   ///< proven untestable by PODEM
    Aborted,     ///< PODEM hit its backtrack limit
    Undetected,  ///< never targeted (only when a budget stopped the run)
};

struct TestGenResult {
    std::vector<Vector> vectors;     ///< full sequence, random prefix first
    int random_count = 0;            ///< length of the random prefix
    int deterministic_count = 0;     ///< PODEM-generated tail
    std::size_t detected = 0;
    std::size_t redundant = 0;       ///< proven untestable
    std::size_t aborted = 0;         ///< backtrack limit hit
    std::vector<int> first_detected_at;  ///< per fault, 1-based; -1 undetected
    std::vector<FaultStatus> status;     ///< per fault
    /// Why generation stopped early (None = ran to natural completion).
    /// On a stop, `vectors` is a bit-identical prefix of the sequence an
    /// unbounded run would generate, and untargeted faults stay Undetected.
    support::StopReason stop = support::StopReason::None;
    std::size_t untargeted = 0;  ///< faults never targeted due to the stop

    /// Coverage of testable faults: detected / (total - redundant).
    double coverage() const;
    /// Raw coverage: detected / total.
    double raw_coverage() const;
};

/// Generates a stuck-at test set for the given (typically collapsed) fault
/// list.  Deterministic in `options.seed`.
TestGenResult generate_test_set(const Circuit& circuit,
                                std::vector<StuckAtFault> faults,
                                const TestGenOptions& options = {});

}  // namespace dlp::atpg
