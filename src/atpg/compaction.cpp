#include "atpg/compaction.h"

#include <algorithm>

namespace dlp::atpg {

CompactionResult compact_reverse(
    const netlist::Circuit& circuit,
    std::span<const gatesim::StuckAtFault> faults,
    std::span<const gatesim::Vector> vectors, std::string_view engine) {
    CompactionResult result;
    result.original = vectors.size();

    const std::unique_ptr<sim::Session> sim =
        sim::resolve_engine(engine).open(
            circuit,
            std::vector<gatesim::StuckAtFault>(faults.begin(), faults.end()));
    std::vector<bool> keep(vectors.size(), false);
    for (size_t i = vectors.size(); i-- > 0;) {
        const gatesim::Vector& v = vectors[i];
        const int newly = sim->apply(std::span(&v, 1));
        if (newly > 0) keep[i] = true;
    }
    for (size_t i = 0; i < vectors.size(); ++i)
        if (keep[i])
            result.vectors.push_back(vectors[i]);
    result.kept = result.vectors.size();
    return result;
}

}  // namespace dlp::atpg
