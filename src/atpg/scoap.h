// SCOAP-style testability measures (Goldstein), used by PODEM's backtrace
// to pick the cheapest primary-input assignment for an objective.
#pragma once

#include <limits>
#include <vector>

#include "netlist/circuit.h"

namespace dlp::atpg {

using netlist::Circuit;
using netlist::NetId;

/// Cost value meaning "impossible".  Observability stays at this value for
/// nets with no structural path to a primary output (dead cones); the lint
/// layer keys off `co >= kScoapInfinite` to flag structurally untestable
/// faults.  Sums are capped here, so finite costs never reach it.
constexpr int kScoapInfinite = std::numeric_limits<int>::max() / 4;

/// Combinational controllabilities/observability per net.  Values are the
/// classic SCOAP counts: a primary input has CC0 = CC1 = 1; a primary
/// output has CO = 0; larger = harder.
struct Testability {
    std::vector<int> cc0;  ///< cost of setting the net to 0
    std::vector<int> cc1;  ///< cost of setting the net to 1
    std::vector<int> co;   ///< cost of observing the net at a PO
};

Testability compute_testability(const Circuit& circuit);

}  // namespace dlp::atpg
