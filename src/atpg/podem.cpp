#include "atpg/podem.h"

#include <algorithm>
#include <stdexcept>

namespace dlp::atpg {

using netlist::GateType;

V3 v3_from_bool(bool b) { return b ? V3::One : V3::Zero; }

namespace {

V3 v3_not(V3 v) {
    if (v == V3::X) return V3::X;
    return v == V3::Zero ? V3::One : V3::Zero;
}

V3 eval3(GateType type, std::span<const V3> in) {
    switch (type) {
        case GateType::Input:
            throw std::logic_error("eval3 on Input");
        case GateType::Buf:
            return in[0];
        case GateType::Not:
            return v3_not(in[0]);
        case GateType::And:
        case GateType::Nand: {
            bool any_x = false;
            for (V3 v : in) {
                if (v == V3::Zero)
                    return type == GateType::And ? V3::Zero : V3::One;
                if (v == V3::X) any_x = true;
            }
            if (any_x) return V3::X;
            return type == GateType::And ? V3::One : V3::Zero;
        }
        case GateType::Or:
        case GateType::Nor: {
            bool any_x = false;
            for (V3 v : in) {
                if (v == V3::One)
                    return type == GateType::Or ? V3::One : V3::Zero;
                if (v == V3::X) any_x = true;
            }
            if (any_x) return V3::X;
            return type == GateType::Or ? V3::Zero : V3::One;
        }
        case GateType::Xor:
        case GateType::Xnor: {
            bool acc = type == GateType::Xnor;
            for (V3 v : in) {
                if (v == V3::X) return V3::X;
                acc ^= (v == V3::One);
            }
            return v3_from_bool(acc);
        }
    }
    throw std::logic_error("unknown gate type");
}

/// Controlling input value of a gate type, if it has one.
std::optional<V3> controlling_value(GateType type) {
    switch (type) {
        case GateType::And:
        case GateType::Nand:
            return V3::Zero;
        case GateType::Or:
        case GateType::Nor:
            return V3::One;
        default:
            return std::nullopt;
    }
}

bool inverts(GateType type) {
    return type == GateType::Not || type == GateType::Nand ||
           type == GateType::Nor || type == GateType::Xnor;
}

constexpr size_t kNoPi = static_cast<size_t>(-1);

}  // namespace

Podem::Podem(const Circuit& circuit, Testability testability)
    : circuit_(circuit),
      testability_(std::move(testability)),
      fanouts_(circuit.fanouts()) {
    pi_index_of_net_.assign(circuit_.gate_count(), kNoPi);
    for (size_t i = 0; i < circuit_.inputs().size(); ++i)
        pi_index_of_net_[circuit_.inputs()[i]] = i;
}

void Podem::imply(const StuckAtFault& fault) {
    const size_t n = circuit_.gate_count();
    good_.resize(n);
    faulty_.resize(n);
    std::vector<V3> operands;
    size_t next_pi = 0;
    for (NetId g = 0; g < n; ++g) {
        const auto& gate = circuit_.gate(g);
        if (gate.type == GateType::Input) {
            good_[g] = pi_[next_pi];
            faulty_[g] = pi_[next_pi];
            ++next_pi;
        } else {
            operands.clear();
            for (NetId f : gate.fanin) operands.push_back(good_[f]);
            good_[g] = eval3(gate.type, operands);
            operands.clear();
            for (int pin = 0; pin < static_cast<int>(gate.fanin.size());
                 ++pin) {
                const NetId f = gate.fanin[static_cast<size_t>(pin)];
                V3 v = faulty_[f];
                if (!fault.is_stem() && g == fault.reader && pin == fault.pin)
                    v = v3_from_bool(fault.stuck_value);
                operands.push_back(v);
            }
            faulty_[g] = eval3(gate.type, operands);
        }
        if (fault.is_stem() && g == fault.net)
            faulty_[g] = v3_from_bool(fault.stuck_value);
    }
}

bool Podem::detected() const {
    for (NetId po : circuit_.outputs())
        if (good_[po] != V3::X && faulty_[po] != V3::X &&
            good_[po] != faulty_[po])
            return true;
    return false;
}

bool Podem::excitation_impossible(const StuckAtFault& fault) const {
    const V3 site = good_[fault.net];
    return site != V3::X && site == v3_from_bool(fault.stuck_value);
}

bool Podem::x_path_exists(const StuckAtFault& fault) const {
    // A fault effect can still reach a PO if some net carrying D/D' (or the
    // yet-unexcited site) has a forward path of X-composite nets to a PO.
    const size_t n = circuit_.gate_count();
    std::vector<char> effect(n, 0);
    for (NetId g = 0; g < n; ++g)
        if (good_[g] != V3::X && faulty_[g] != V3::X && good_[g] != faulty_[g])
            effect[g] = 1;
    if (good_[fault.net] == V3::X) effect[fault.net] = 1;
    // A branch fault's effect lives on the reader's pin, invisible in net
    // values: seed the reader's output optimistically while it is still X.
    if (!fault.is_stem() &&
        (good_[fault.reader] == V3::X || faulty_[fault.reader] == V3::X))
        effect[fault.reader] = 1;

    std::vector<char> can_reach(n, 0);  // X-composite net reaching a PO
    for (NetId g = static_cast<NetId>(n); g-- > 0;) {
        const bool is_x = good_[g] == V3::X || faulty_[g] == V3::X;
        if (effect[g] || is_x) {
            bool reach = circuit_.is_output(g) && (effect[g] || is_x);
            if (!reach)
                for (NetId reader : fanouts_[g])
                    if (can_reach[reader]) {
                        reach = true;
                        break;
                    }
            // Only X nets (or effect sources) may extend the path.
            can_reach[g] = reach && (is_x || effect[g]);
        }
    }
    for (NetId g = 0; g < n; ++g)
        if (effect[g] && can_reach[g]) return true;
    return false;
}

std::optional<std::pair<NetId, V3>> Podem::objective(
    const StuckAtFault& fault) {
    // 1. Excite the fault.
    if (good_[fault.net] == V3::X)
        return std::pair{fault.net, v3_from_bool(!fault.stuck_value)};

    // 2. Propagate: pick a D-frontier gate (an input carries D/D', output
    //    is still X in one of the circuits).
    const size_t n = circuit_.gate_count();
    for (NetId g = 0; g < n; ++g) {
        const auto& gate = circuit_.gate(g);
        if (gate.type == GateType::Input) continue;
        if (good_[g] != V3::X && faulty_[g] != V3::X) continue;
        bool has_effect_input = false;
        for (NetId f : gate.fanin)
            if (good_[f] != V3::X && faulty_[f] != V3::X &&
                good_[f] != faulty_[f]) {
                has_effect_input = true;
                break;
            }
        // An excited branch fault makes its reader a D-frontier gate even
        // though the driving net agrees in both circuits.
        if (!fault.is_stem() && g == fault.reader && good_[fault.net] != V3::X)
            has_effect_input = true;
        if (!has_effect_input) continue;
        // Set an X side input to the non-controlling value (for XOR any
        // binary value propagates; use the cheaper 0/1).
        const auto ctrl = controlling_value(gate.type);
        NetId best = netlist::kNoNet;
        for (NetId f : gate.fanin) {
            if (good_[f] != V3::X) continue;
            if (best == netlist::kNoNet) best = f;
        }
        if (best == netlist::kNoNet) continue;
        if (ctrl)
            return std::pair{best, v3_not(*ctrl)};
        const bool zero_cheaper =
            testability_.cc0[best] <= testability_.cc1[best];
        return std::pair{best, zero_cheaper ? V3::Zero : V3::One};
    }
    return std::nullopt;
}

std::pair<size_t, V3> Podem::backtrace(NetId net, V3 value) const {
    while (pi_index_of_net_[net] == kNoPi) {
        const auto& gate = circuit_.gate(net);
        const V3 needed = inverts(gate.type) ? v3_not(value) : value;
        const auto ctrl = controlling_value(gate.type);

        NetId chosen = netlist::kNoNet;
        if (gate.type == GateType::Buf || gate.type == GateType::Not) {
            chosen = gate.fanin[0];
        } else if (ctrl && needed == *ctrl) {
            // One controlling input suffices: pick the easiest X input.
            int best_cost = 0;
            for (NetId f : gate.fanin) {
                if (good_[f] != V3::X) continue;
                const int cost = needed == V3::Zero ? testability_.cc0[f]
                                                    : testability_.cc1[f];
                if (chosen == netlist::kNoNet || cost < best_cost) {
                    chosen = f;
                    best_cost = cost;
                }
            }
        } else {
            // All inputs must be non-controlling: pick the hardest X input
            // first so infeasible objectives fail fast.
            int best_cost = 0;
            for (NetId f : gate.fanin) {
                if (good_[f] != V3::X) continue;
                const int cost = needed == V3::Zero ? testability_.cc0[f]
                                                    : testability_.cc1[f];
                if (chosen == netlist::kNoNet || cost > best_cost) {
                    chosen = f;
                    best_cost = cost;
                }
            }
        }
        if (chosen == netlist::kNoNet)
            throw std::logic_error("backtrace from a net with no X input");

        if (gate.type == GateType::Xor || gate.type == GateType::Xnor) {
            // Aim for the parity implied by already-binary side inputs,
            // assuming other X side inputs resolve to 0.
            bool parity = gate.type == GateType::Xnor;
            for (NetId f : gate.fanin)
                if (f != chosen && good_[f] == V3::One) parity ^= true;
            value = v3_from_bool((value == V3::One) ^ parity);
            net = chosen;
            continue;
        }
        value = needed;
        net = chosen;
    }
    return {pi_index_of_net_[net], value};
}

PodemResult Podem::generate(const StuckAtFault& fault, int backtrack_limit,
                            std::uint64_t x_fill,
                            const support::RunBudget* budget) {
    const size_t pi_count = circuit_.inputs().size();
    PodemResult result;
    pi_.assign(pi_count, V3::X);
    imply(fault);
    ++result.implications;
    struct Frame {
        size_t pi;
        V3 first;
        bool tried_both;
    };
    std::vector<Frame> stack;

    while (true) {
        if (detected()) {
            result.status = PodemResult::Status::TestFound;
            result.test.resize(pi_count);
            for (size_t i = 0; i < pi_count; ++i)
                result.test[i] = pi_[i] == V3::X
                                     ? ((x_fill >> (i % 64)) & 1ULL) != 0
                                     : pi_[i] == V3::One;
            return result;
        }

        bool dead = excitation_impossible(fault) || !x_path_exists(fault);
        std::optional<std::pair<NetId, V3>> obj;
        if (!dead) {
            obj = objective(fault);
            dead = !obj.has_value();
        }

        if (!dead) {
            const auto [pi, v] = backtrace(obj->first, obj->second);
            stack.push_back({pi, v, false});
            pi_[pi] = v;
            imply(fault);
            ++result.implications;
            continue;
        }

        // Backtrack: flip the most recent single-tried decision.
        while (!stack.empty() && stack.back().tried_both) {
            pi_[stack.back().pi] = V3::X;
            stack.pop_back();
        }
        if (stack.empty()) {
            result.status = PodemResult::Status::Redundant;
            return result;
        }
        ++result.backtracks;
        if (result.backtracks > backtrack_limit) {
            result.status = PodemResult::Status::Aborted;
            return result;
        }
        // Budget check at the backtrack boundary: the search stops between
        // decisions, never mid-implication.
        if (budget) {
            const support::StopReason stop = budget->check();
            if (stop != support::StopReason::None) {
                result.status = PodemResult::Status::Aborted;
                result.stop = stop;
                return result;
            }
        }
        stack.back().tried_both = true;
        pi_[stack.back().pi] = v3_not(stack.back().first);
        imply(fault);
        ++result.implications;
    }
}

}  // namespace dlp::atpg
