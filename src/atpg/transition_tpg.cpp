#include "atpg/transition_tpg.h"

#include <algorithm>
#include <span>

#include "gatesim/logic_sim.h"
#include "gatesim/patterns.h"

namespace dlp::atpg {

using gatesim::TransitionFault;
using gatesim::TransitionFaultSimulator;
using gatesim::Vector;

TransitionTestResult generate_transition_tests(
    const netlist::Circuit& circuit,
    std::vector<gatesim::TransitionFault> faults,
    const TransitionTestOptions& options) {
    TransitionTestResult result;
    TransitionFaultSimulator sim(circuit, std::move(faults));
    gatesim::RandomPatternGenerator rng(options.seed);

    // Phase 1: random vectors; consecutive vectors form the pairs.
    int barren = 0;
    while (result.random_count < options.max_random &&
           barren < options.stale_blocks) {
        const int take = std::min(options.random_block,
                                  options.max_random - result.random_count);
        const auto block = rng.vectors(circuit, take);
        const int found = sim.apply(block);
        result.vectors.insert(result.vectors.end(), block.begin(),
                              block.end());
        result.random_count += take;
        barren = found == 0 ? barren + 1 : 0;
        if (found > 0 && static_cast<size_t>(found) == sim.faults().size())
            break;
    }

    // Phase 2: deterministic pairs via PODEM.
    Podem podem(circuit, compute_testability(circuit));
    const auto justify_v1 = [&](netlist::NetId line, bool init,
                                Vector& out) {
        for (int probe = 0; probe < options.justify_probes; ++probe) {
            Vector candidate = rng.next_vector(circuit);
            const auto vals = gatesim::simulate(circuit, candidate);
            if (vals[line] == init) {
                out = std::move(candidate);
                return true;
            }
        }
        // PODEM fallback: a test for the line stuck-at-(!init) must set the
        // line to init (excitation); propagation comes along for free.
        const gatesim::StuckAtFault excite{line, netlist::kNoNet, -1, !init};
        const auto res = podem.generate(excite, options.backtrack_limit,
                                        rng.next_word());
        if (res.status != PodemResult::Status::TestFound) return false;
        out = res.test;
        return true;
    };

    for (size_t fi = 0; fi < sim.faults().size(); ++fi) {
        if (sim.first_detected_at()[fi] >= 0) continue;
        const TransitionFault& f = sim.faults()[fi];
        const bool init = !f.slow_to_rise;

        const gatesim::StuckAtFault target{f.line, netlist::kNoNet, -1, init};
        const auto res =
            podem.generate(target, options.backtrack_limit, rng.next_word());
        if (res.status == PodemResult::Status::Redundant) {
            ++result.untestable;
            continue;
        }
        if (res.status == PodemResult::Status::Aborted) {
            ++result.aborted;
            continue;
        }
        Vector v1;
        if (!justify_v1(f.line, init, v1)) {
            // The line cannot even be set to the initial value: the
            // transition can never be launched.
            ++result.untestable;
            continue;
        }
        const Vector pair[2] = {v1, res.test};
        sim.apply(pair);
        result.vectors.push_back(v1);
        result.vectors.push_back(res.test);
        ++result.pair_count;
    }

    size_t detected = 0;
    for (int at : sim.first_detected_at()) detected += at >= 1;
    result.detected = detected;
    result.first_detected_at.assign(sim.first_detected_at().begin(),
                                    sim.first_detected_at().end());
    return result;
}

}  // namespace dlp::atpg
