// Static test compaction for stuck-at test sets.
//
// Reverse-order restoration: fault-simulate the sequence in reverse and
// keep only vectors that detect a not-yet-covered fault.  Deterministic
// vectors (each targeting a hard fault) survive; most of the random prefix
// is redundant once the deterministic tail exists.  The classic technique;
// coverage is preserved exactly.
//
// Note: compaction is for *static voltage* stuck-at sets only - it breaks
// the vector adjacency that two-pattern (transition) tests rely on.
#pragma once

#include <string_view>

#include "gatesim/engine.h"

namespace dlp::atpg {

struct CompactionResult {
    std::vector<gatesim::Vector> vectors;  ///< kept, in original order
    std::size_t original = 0;
    std::size_t kept = 0;
};

/// `engine` selects the grading fault-sim engine (sim::resolve_engine
/// semantics: "" = DLPROJ_ENGINE, else the registry default).
CompactionResult compact_reverse(
    const netlist::Circuit& circuit,
    std::span<const gatesim::StuckAtFault> faults,
    std::span<const gatesim::Vector> vectors, std::string_view engine = {});

}  // namespace dlp::atpg
