#include "atpg/generate.h"

#include <algorithm>
#include <span>

#include "gatesim/patterns.h"
#include "obs/telemetry.h"

namespace dlp::atpg {

double TestGenResult::coverage() const {
    const std::size_t total = first_detected_at.size();
    const std::size_t testable = total - redundant;
    return testable == 0 ? 0.0
                         : static_cast<double>(detected) /
                               static_cast<double>(testable);
}

double TestGenResult::raw_coverage() const {
    const std::size_t total = first_detected_at.size();
    return total == 0 ? 0.0
                      : static_cast<double>(detected) /
                            static_cast<double>(total);
}

TestGenResult generate_test_set(const Circuit& circuit,
                                std::vector<StuckAtFault> faults,
                                const TestGenOptions& options) {
    TestGenResult result;
    const std::unique_ptr<sim::Session> session =
        sim::resolve_engine(options.engine)
            .open(circuit, std::move(faults), options.parallel);
    sim::Session& sim = *session;
    gatesim::RandomPatternGenerator rng(options.seed);
    const support::RunBudget& budget = options.budget;
    const int backtrack_limit = budget.atpg_backtracks > 0
                                    ? budget.atpg_backtracks
                                    : options.backtrack_limit;

    // Phase 1: random patterns until they stop paying off.  The budget is
    // enforced inside the simulator's apply(): only the applied prefix of a
    // block is recorded, so a stopped run's sequence is a bit-identical
    // prefix of the unbounded run's (rng.vectors generates per vector, so a
    // truncated block is the full block's prefix).
    {
        DLP_OBS_SPAN(random_span, "atpg.random_phase");
        int barren = 0;
        while (result.random_count < options.max_random &&
               barren < options.stale_blocks &&
               sim.detected_count() < sim.faults().size()) {
            const int take =
                std::min(options.random_block,
                         options.max_random - result.random_count);
            const auto block = rng.vectors(circuit, take);
            const auto ares =
                sim.apply(std::span<const Vector>(block), budget);
            result.vectors.insert(result.vectors.end(), block.begin(),
                                  block.begin() + ares.vectors_applied);
            result.random_count += ares.vectors_applied;
            if (ares.stop != support::StopReason::None) {
                result.stop = ares.stop;
                break;
            }
            barren = ares.newly_detected == 0 ? barren + 1 : 0;
        }
        DLP_OBS_SPAN_NOTE(random_span, std::to_string(result.random_count) +
                                           " random vectors");
    }

    // Phase 2: PODEM for each remaining fault, with fault dropping.  A
    // budget stop breaks the whole loop (it must not skip to the next
    // fault, or the generated sequence would diverge from the unbounded
    // run's); faults never reached stay Undetected.
    result.status.assign(sim.faults().size(), FaultStatus::Undetected);
    if (result.stop == support::StopReason::None) {
        // Per-target counters: each PODEM search is one deterministic unit
        // (fixed fault order + x-fill), so totals are thread-count-invariant.
        DLP_OBS_SPAN(podem_span, "atpg.podem_phase");
        DLP_OBS_COUNTER(c_targets, "atpg.targets");
        DLP_OBS_COUNTER(c_backtracks, "atpg.backtracks");
        DLP_OBS_COUNTER(c_implications, "atpg.implications");
        DLP_OBS_COUNTER(c_aborts, "atpg.aborts");
        DLP_OBS_COUNTER(c_redundant, "atpg.redundant");
        Podem podem(circuit, compute_testability(circuit));
        for (std::size_t fi : sim.undetected()) {
            if (sim.first_detected_at()[fi] >= 0) continue;  // dropped
            const support::StopReason stop = budget.check();
            if (stop != support::StopReason::None) {
                result.stop = stop;
                break;
            }
            const auto res = podem.generate(sim.faults()[fi], backtrack_limit,
                                            rng.next_word(), &budget);
            DLP_OBS_ADD(c_targets, 1);
            DLP_OBS_ADD(c_backtracks, res.backtracks);
            DLP_OBS_ADD(c_implications, res.implications);
            if (res.status == PodemResult::Status::Aborted &&
                res.stop == support::StopReason::None)
                DLP_OBS_ADD(c_aborts, 1);
            if (res.status == PodemResult::Status::Redundant)
                DLP_OBS_ADD(c_redundant, 1);
            if (res.stop != support::StopReason::None) {
                // Interrupted mid-search: the fault's real outcome is
                // unknown, so it stays untargeted rather than Aborted.
                result.stop = res.stop;
                break;
            }
            switch (res.status) {
                case PodemResult::Status::TestFound: {
                    const Vector v = res.test;
                    const auto ares = sim.apply(std::span(&v, 1), budget);
                    if (ares.vectors_applied == 0) {
                        // Vector cap reached: the test cannot join the
                        // sequence, so the fault stays untargeted.
                        result.stop = ares.stop;
                        break;
                    }
                    result.vectors.push_back(v);
                    ++result.deterministic_count;
                    break;
                }
                case PodemResult::Status::Redundant:
                    result.status[fi] = FaultStatus::Redundant;
                    ++result.redundant;
                    break;
                case PodemResult::Status::Aborted:
                    result.status[fi] = FaultStatus::Aborted;
                    ++result.aborted;
                    break;
            }
            if (result.stop != support::StopReason::None) break;
        }
    }

    result.detected = sim.detected_count();
    result.first_detected_at.assign(sim.first_detected_at().begin(),
                                    sim.first_detected_at().end());
    for (size_t i = 0; i < result.first_detected_at.size(); ++i)
        if (result.first_detected_at[i] >= 1)
            result.status[i] = FaultStatus::Detected;
    for (FaultStatus s : result.status)
        if (s == FaultStatus::Undetected) ++result.untargeted;
    return result;
}

}  // namespace dlp::atpg
