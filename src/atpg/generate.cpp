#include "atpg/generate.h"

#include <algorithm>
#include <span>

#include "gatesim/patterns.h"

namespace dlp::atpg {

double TestGenResult::coverage() const {
    const std::size_t total = first_detected_at.size();
    const std::size_t testable = total - redundant;
    return testable == 0 ? 0.0
                         : static_cast<double>(detected) /
                               static_cast<double>(testable);
}

double TestGenResult::raw_coverage() const {
    const std::size_t total = first_detected_at.size();
    return total == 0 ? 0.0
                      : static_cast<double>(detected) /
                            static_cast<double>(total);
}

TestGenResult generate_test_set(const Circuit& circuit,
                                std::vector<StuckAtFault> faults,
                                const TestGenOptions& options) {
    TestGenResult result;
    gatesim::FaultSimulator sim(circuit, std::move(faults), options.parallel);
    gatesim::RandomPatternGenerator rng(options.seed);

    // Phase 1: random patterns until they stop paying off.
    int barren = 0;
    while (result.random_count < options.max_random &&
           barren < options.stale_blocks &&
           sim.detected_count() < sim.faults().size()) {
        const int take = std::min(options.random_block,
                                  options.max_random - result.random_count);
        const auto block = rng.vectors(circuit, take);
        const int found = sim.apply(block);
        result.vectors.insert(result.vectors.end(), block.begin(),
                              block.end());
        result.random_count += take;
        barren = found == 0 ? barren + 1 : 0;
    }

    // Phase 2: PODEM for each remaining fault, with fault dropping.
    result.status.assign(sim.faults().size(), FaultStatus::Undetected);
    Podem podem(circuit, compute_testability(circuit));
    for (std::size_t fi : sim.undetected()) {
        if (sim.first_detected_at()[fi] >= 0) continue;  // dropped meanwhile
        const auto res = podem.generate(sim.faults()[fi],
                                        options.backtrack_limit,
                                        rng.next_word());
        switch (res.status) {
            case PodemResult::Status::TestFound: {
                const Vector v = res.test;
                sim.apply(std::span(&v, 1));
                result.vectors.push_back(v);
                ++result.deterministic_count;
                break;
            }
            case PodemResult::Status::Redundant:
                result.status[fi] = FaultStatus::Redundant;
                ++result.redundant;
                break;
            case PodemResult::Status::Aborted:
                result.status[fi] = FaultStatus::Aborted;
                ++result.aborted;
                break;
        }
    }

    result.detected = sim.detected_count();
    result.first_detected_at.assign(sim.first_detected_at().begin(),
                                    sim.first_detected_at().end());
    for (size_t i = 0; i < result.first_detected_at.size(); ++i)
        if (result.first_detected_at[i] >= 1)
            result.status[i] = FaultStatus::Detected;
    return result;
}

}  // namespace dlp::atpg
