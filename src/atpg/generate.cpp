#include "atpg/generate.h"

#include <algorithm>
#include <set>
#include <span>
#include <stdexcept>

#include "gatesim/patterns.h"
#include "obs/telemetry.h"

namespace dlp::atpg {

std::string_view ndetect_mix_name(NDetectMix mix) {
    switch (mix) {
        case NDetectMix::Mixed: return "mixed";
        case NDetectMix::Random: return "random";
        case NDetectMix::WeightedRandom: return "weighted";
        case NDetectMix::Deterministic: return "deterministic";
    }
    return "mixed";
}

NDetectMix parse_ndetect_mix(std::string_view name) {
    if (name == "mixed") return NDetectMix::Mixed;
    if (name == "random") return NDetectMix::Random;
    if (name == "weighted") return NDetectMix::WeightedRandom;
    if (name == "deterministic") return NDetectMix::Deterministic;
    throw std::invalid_argument(
        "unknown ndetect mix '" + std::string(name) +
        "' (accepted: mixed, random, weighted, deterministic)");
}

double TestGenResult::coverage() const {
    const std::size_t total = first_detected_at.size();
    const std::size_t testable = total - redundant;
    return testable == 0 ? 0.0
                         : static_cast<double>(detected) /
                               static_cast<double>(testable);
}

double TestGenResult::raw_coverage() const {
    const std::size_t total = first_detected_at.size();
    return total == 0 ? 0.0
                      : static_cast<double>(detected) /
                            static_cast<double>(total);
}

TestGenResult generate_test_set(const Circuit& circuit,
                                std::vector<StuckAtFault> faults,
                                const TestGenOptions& options) {
    TestGenResult result;
    const int ndetect = std::max(1, options.ndetect);
    result.ndetect = ndetect;
    if (!options.untestable.empty() &&
        options.untestable.size() != faults.size())
        throw std::invalid_argument(
            "generate_test_set: untestable mask size mismatch");
    const std::unique_ptr<sim::Session> session =
        sim::resolve_engine(options.engine)
            .open(circuit, std::move(faults), options.parallel,
                  sim::SessionOptions{ndetect, options.untestable});
    sim::Session& sim = *session;
    gatesim::RandomPatternGenerator rng(options.seed);
    const support::RunBudget& budget = options.budget;
    const int backtrack_limit = budget.atpg_backtracks > 0
                                    ? budget.atpg_backtracks
                                    : options.backtrack_limit;

    // Phase 1: random patterns until they stop paying off.  The budget is
    // enforced inside the simulator's apply(): only the applied prefix of a
    // block is recorded, so a stopped run's sequence is a bit-identical
    // prefix of the unbounded run's (rng.vectors generates per vector, so a
    // truncated block is the full block's prefix).
    {
        DLP_OBS_SPAN(random_span, "atpg.random_phase");
        int barren = 0;
        while (result.random_count < options.max_random &&
               barren < options.stale_blocks &&
               sim.detected_count() < sim.faults().size()) {
            const int take =
                std::min(options.random_block,
                         options.max_random - result.random_count);
            const auto block = rng.vectors(circuit, take);
            const auto ares =
                sim.apply(std::span<const Vector>(block), budget);
            result.vectors.insert(result.vectors.end(), block.begin(),
                                  block.begin() + ares.vectors_applied);
            result.random_count += ares.vectors_applied;
            if (ares.stop != support::StopReason::None) {
                result.stop = ares.stop;
                break;
            }
            barren = ares.newly_detected == 0 ? barren + 1 : 0;
        }
        DLP_OBS_SPAN_NOTE(random_span, std::to_string(result.random_count) +
                                           " random vectors");
    }

    // Phase 2: PODEM for each remaining fault, with fault dropping.  A
    // budget stop breaks the whole loop (it must not skip to the next
    // fault, or the generated sequence would diverge from the unbounded
    // run's); faults never reached stay Undetected.
    result.status.assign(sim.faults().size(), FaultStatus::Undetected);
    // Statically proven-untestable faults are settled before any PODEM
    // targeting: Redundant upfront, with neither a search nor an x-fill
    // draw, so the corrected run spends its randomness only on faults that
    // can still matter.
    if (!options.untestable.empty())
        for (std::size_t fi = 0; fi < result.status.size(); ++fi)
            if (options.untestable[fi]) {
                result.status[fi] = FaultStatus::Redundant;
                ++result.redundant;
            }
    if (result.stop == support::StopReason::None) {
        // Per-target counters: each PODEM search is one deterministic unit
        // (fixed fault order + x-fill), so totals are thread-count-invariant.
        DLP_OBS_SPAN(podem_span, "atpg.podem_phase");
        DLP_OBS_COUNTER(c_targets, "atpg.targets");
        DLP_OBS_COUNTER(c_backtracks, "atpg.backtracks");
        DLP_OBS_COUNTER(c_implications, "atpg.implications");
        DLP_OBS_COUNTER(c_aborts, "atpg.aborts");
        DLP_OBS_COUNTER(c_redundant, "atpg.redundant");
        Podem podem(circuit, compute_testability(circuit));
        for (std::size_t fi : sim.undetected()) {
            if (sim.first_detected_at()[fi] >= 0) continue;  // dropped
            if (result.status[fi] == FaultStatus::Redundant)
                continue;  // statically proven untestable: already settled
            const support::StopReason stop = budget.check();
            if (stop != support::StopReason::None) {
                result.stop = stop;
                break;
            }
            const auto res = podem.generate(sim.faults()[fi], backtrack_limit,
                                            rng.next_word(), &budget);
            DLP_OBS_ADD(c_targets, 1);
            DLP_OBS_ADD(c_backtracks, res.backtracks);
            DLP_OBS_ADD(c_implications, res.implications);
            if (res.status == PodemResult::Status::Aborted &&
                res.stop == support::StopReason::None)
                DLP_OBS_ADD(c_aborts, 1);
            if (res.status == PodemResult::Status::Redundant)
                DLP_OBS_ADD(c_redundant, 1);
            if (res.stop != support::StopReason::None) {
                // Interrupted mid-search: the fault's real outcome is
                // unknown, so it stays untargeted rather than Aborted.
                result.stop = res.stop;
                break;
            }
            switch (res.status) {
                case PodemResult::Status::TestFound: {
                    const Vector v = res.test;
                    const auto ares = sim.apply(std::span(&v, 1), budget);
                    if (ares.vectors_applied == 0) {
                        // Vector cap reached: the test cannot join the
                        // sequence, so the fault stays untargeted.
                        result.stop = ares.stop;
                        break;
                    }
                    result.vectors.push_back(v);
                    ++result.deterministic_count;
                    break;
                }
                case PodemResult::Status::Redundant:
                    result.status[fi] = FaultStatus::Redundant;
                    ++result.redundant;
                    break;
                case PodemResult::Status::Aborted:
                    result.status[fi] = FaultStatus::Aborted;
                    ++result.aborted;
                    break;
            }
            if (result.stop != support::StopReason::None) break;
        }
    }

    // Phase 3: n-detection top-up.  Phases 1-2 are untouched by the target
    // (their loop conditions read first-detection stats only), so the
    // sequence so far is exactly the n=1 sequence; this phase only appends,
    // re-targeting detected faults until each has `ndetect` distinct
    // detecting vectors.  All sources draw from the same rng stream, so
    // the whole sequence stays deterministic in options.seed and a budget
    // stop still yields a bit-identical prefix of the unbounded run.
    if (ndetect > 1 && result.stop == support::StopReason::None) {
        DLP_OBS_SPAN(topup_span, "atpg.ndetect_topup");
        // Distinctness: a fault's count must reflect distinct tests, so
        // top-up vectors are deduplicated against the whole sequence.
        std::set<Vector> seen(result.vectors.begin(), result.vectors.end());

        const auto counts_sum = [&] {
            long long s = 0;
            for (int c : sim.detection_counts()) s += c;
            return s;
        };
        // Detected faults still below target; undetectable faults (never
        // detected: redundant, aborted, untargeted) cannot be topped up.
        const auto under_target = [&] {
            std::size_t n = 0;
            const auto counts = sim.detection_counts();
            const auto first = sim.first_detected_at();
            for (std::size_t fi = 0; fi < counts.size(); ++fi)
                if (first[fi] >= 0 && counts[fi] < ndetect) ++n;
            return n;
        };
        const auto apply_block = [&](std::vector<Vector>& block,
                                     int& counter) {
            if (block.empty()) return;
            const auto ares =
                sim.apply(std::span<const Vector>(block), budget);
            result.vectors.insert(result.vectors.end(), block.begin(),
                                  block.begin() + ares.vectors_applied);
            counter += ares.vectors_applied;
            if (ares.stop != support::StopReason::None)
                result.stop = ares.stop;
        };
        // One biased random vector: each input is 1 with probability w8/8.
        const auto biased_vector = [&](int w8) {
            Vector v(circuit.inputs().size());
            for (std::size_t i = 0; i < v.size(); ++i)
                v[i] = (rng.next_word() & 7) <
                       static_cast<std::uint64_t>(w8);
            return v;
        };

        // Random sources: blocks until the counts stop improving for
        // stale_blocks rounds (same barren rule as phase 1, but graded on
        // count progress), capped at max_random vectors per source.  The
        // weighted source cycles input biases 1/8, 1/4, 3/4, 7/8, 1/2 —
        // extreme biases excite the long AND/OR chains uniform vectors
        // miss (the classic weighted-random argument).
        const auto random_rounds = [&](bool weighted, int& counter) {
            static constexpr int kBias[] = {1, 2, 6, 7, 4};
            int barren = 0;
            int generated = 0;
            int bias_idx = 0;
            while (result.stop == support::StopReason::None &&
                   under_target() > 0 && barren < options.stale_blocks &&
                   generated < options.max_random) {
                const support::StopReason stop = budget.check();
                if (stop != support::StopReason::None) {
                    result.stop = stop;
                    break;
                }
                const int take = std::min(options.random_block,
                                          options.max_random - generated);
                const int w8 = kBias[bias_idx++ % 5];
                std::vector<Vector> block;
                for (int k = 0; k < take; ++k) {
                    Vector v = weighted ? biased_vector(w8)
                                        : rng.next_vector(circuit);
                    if (seen.insert(v).second) block.push_back(std::move(v));
                }
                generated += take;
                const long long before = counts_sum();
                apply_block(block, counter);
                barren = counts_sum() == before ? barren + 1 : 0;
            }
        };

        // Deterministic source: PODEM re-targets each under-target fault
        // with a fresh random x-fill per attempt, so repeated targets yield
        // distinct tests; passes repeat while any vector lands.  A fault
        // whose generated tests keep colliding with the set (fully
        // specified test cubes) just stops contributing.
        const auto deterministic_passes = [&] {
            constexpr int kFutileAttempts = 4;
            Podem podem(circuit, compute_testability(circuit));
            bool progress = true;
            while (progress && result.stop == support::StopReason::None &&
                   under_target() > 0) {
                progress = false;
                auto counts = sim.detection_counts();
                const auto first = sim.first_detected_at();
                for (std::size_t fi = 0; fi < counts.size(); ++fi) {
                    if (first[fi] < 0 || counts[fi] >= ndetect) continue;
                    const support::StopReason stop = budget.check();
                    if (stop != support::StopReason::None) {
                        result.stop = stop;
                        return;
                    }
                    for (int attempt = 0; attempt < kFutileAttempts;
                         ++attempt) {
                        const auto res =
                            podem.generate(sim.faults()[fi], backtrack_limit,
                                           rng.next_word(), &budget);
                        if (res.stop != support::StopReason::None) {
                            result.stop = res.stop;
                            return;
                        }
                        if (res.status != PodemResult::Status::TestFound)
                            break;  // aborted: the search would just repeat
                        if (!seen.insert(res.test).second)
                            continue;  // duplicate: retry with a new x-fill
                        std::vector<Vector> one{res.test};
                        apply_block(one, result.topup_deterministic_count);
                        if (result.stop != support::StopReason::None)
                            return;
                        progress = true;
                        counts = sim.detection_counts();
                        break;
                    }
                }
            }
        };

        switch (options.ndetect_mix) {
            case NDetectMix::Mixed:
                random_rounds(false, result.topup_random_count);
                random_rounds(true, result.topup_weighted_count);
                deterministic_passes();
                break;
            case NDetectMix::Random:
                random_rounds(false, result.topup_random_count);
                break;
            case NDetectMix::WeightedRandom:
                random_rounds(true, result.topup_weighted_count);
                break;
            case NDetectMix::Deterministic:
                deterministic_passes();
                break;
        }
        DLP_OBS_SPAN_NOTE(
            topup_span,
            std::to_string(result.topup_random_count +
                           result.topup_weighted_count +
                           result.topup_deterministic_count) +
                " top-up vectors");
    }

    result.detected = sim.detected_count();
    result.first_detected_at.assign(sim.first_detected_at().begin(),
                                    sim.first_detected_at().end());
    result.detection_counts = sim.detection_counts();
    result.nth_detected_at = sim.nth_detected_at();
    for (size_t i = 0; i < result.first_detected_at.size(); ++i)
        if (result.first_detected_at[i] >= 1)
            result.status[i] = FaultStatus::Detected;
    for (FaultStatus s : result.status)
        if (s == FaultStatus::Undetected) ++result.untargeted;
    return result;
}

}  // namespace dlp::atpg
