#include "parallel/parallel_for.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "obs/telemetry.h"
#include "parallel/thread_pool.h"
#include "support/env.h"

namespace dlp::parallel {

namespace {

thread_local int tl_scoped_threads = 0;

/// Hard cap: fault-partitioned loops never benefit past this, and it bounds
/// helper-thread creation on a misconfigured DLPROJ_THREADS.
constexpr int kMaxThreads = 256;

int env_threads() {
    // Not cached: a getenv + strtoll per parallel_for entry is noise
    // against the loop body, and it lets tests toggle the knob between
    // runs.  Garbage, negative, or > kMaxThreads values throw
    // support::EnvError instead of silently running with the default
    // worker count (0 = unset = use hardware_concurrency).
    return static_cast<int>(
        support::env_int("DLPROJ_THREADS", 0, 0, kMaxThreads));
}

}  // namespace

int resolve_threads(int requested) {
    int t = requested;
    if (t <= 0) t = tl_scoped_threads;
    if (t <= 0) t = env_threads();
    if (t <= 0) t = static_cast<int>(std::thread::hardware_concurrency());
    if (t <= 0) t = 1;
    return std::min(t, kMaxThreads);
}

ScopedThreads::ScopedThreads(int threads) : prev_(tl_scoped_threads) {
    tl_scoped_threads = threads > 0 ? threads : 0;
}

ScopedThreads::~ScopedThreads() { tl_scoped_threads = prev_; }

void parallel_for(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, int)>& body,
    int threads, const support::CancelToken* cancel) {
    if (n == 0) return;
    if (grain == 0) grain = 1;
    const std::size_t chunk_count = (n + grain - 1) / grain;
    int workers = resolve_threads(threads);
    if (static_cast<std::size_t>(workers) > chunk_count)
        workers = static_cast<int>(chunk_count);
    if (workers <= 1 || ThreadPool::in_parallel_region()) {
        if (!cancel) {
            // Fast path unchanged: one contiguous body call for the range.
            body(0, n, 0);
            return;
        }
        for (std::size_t i = 0; i < n; i += grain) {
            if (cancel->cancelled()) return;
            body(i, std::min(i + grain, n), 0);
        }
        return;
    }

    // One shard per worker; `next` is bumped atomically by the owner and by
    // thieves alike, so a chunk is claimed exactly once no matter who runs
    // it.  Padded to a cache line to keep claims from false-sharing.
    struct alignas(64) Shard {
        std::atomic<std::size_t> next{0};
        std::size_t end = 0;
    };
    std::vector<Shard> shards(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
        const auto uw = static_cast<std::size_t>(w);
        shards[uw].next.store(n * uw / static_cast<std::size_t>(workers),
                              std::memory_order_relaxed);
        shards[uw].end = n * (uw + 1) / static_cast<std::size_t>(workers);
    }

    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mu;

    // parallel.chunks/steals are engine diagnostics: chunk claims race, so
    // their split (not their sum) varies run to run and across thread
    // counts — excluded from the determinism contract.
    DLP_OBS_SPAN(region_span, "parallel_for");
    DLP_OBS_COUNTER(c_regions, "parallel.regions");
    DLP_OBS_ADD(c_regions, 1);
    DLP_OBS_COUNTER(c_chunks, "parallel.chunks");
    DLP_OBS_COUNTER(c_steals, "parallel.steals");

    ThreadPool::global().run(workers, [&](int w) {
        DLP_OBS_SPAN(task_span, "pool.task");
        // Drain the own shard first, then sweep the others stealing chunks.
        for (int s = 0; s < workers; ++s) {
            Shard& sh = shards[static_cast<std::size_t>((w + s) % workers)];
            for (;;) {
                if (failed.load(std::memory_order_relaxed)) return;
                if (cancel && cancel->cancelled()) return;
                const std::size_t i =
                    sh.next.fetch_add(grain, std::memory_order_relaxed);
                if (i >= sh.end) break;
                DLP_OBS_ADD(c_chunks, 1);
                if (s > 0) DLP_OBS_ADD(c_steals, 1);
                try {
                    body(i, std::min(i + grain, sh.end), w);
                } catch (...) {
                    failed.store(true, std::memory_order_relaxed);
                    std::lock_guard<std::mutex> lock(error_mu);
                    if (!error) error = std::current_exception();
                    return;
                }
            }
        }
    });

    if (error) std::rethrow_exception(error);
}

}  // namespace dlp::parallel
