// Chunked work-stealing parallel loops with deterministic results.
//
// The contract every caller leans on: what gets computed depends only on the
// *items*, never on the worker count or the execution interleaving.
// parallel_for gives each worker a contiguous shard of [0, n) and lets idle
// workers steal grain-sized chunks from other shards, so wall-clock balances
// even when per-item cost is wildly skewed (fault simulation is); results
// must be written to per-item slots (or per-worker scratch) by the body.
// parallel_reduce fixes the chunk partition up front and combines partial
// results serially in chunk order, so floating-point reductions are
// bit-identical for any worker count.
//
// Concurrency model: the shared pool hosts ONE top-level region at a time.
// Regions opened while another is running on the same thread execute
// serially inline (correct, just not nested-parallel); opening top-level
// regions from two unrelated threads concurrently is not supported.
//
// Telemetry: a region that actually goes parallel records a
// "parallel_for" span plus parallel.regions/chunks/steals and pool.*
// counters (see src/obs/telemetry.h).  The chunk/steal split races by
// design and is excluded from the determinism contract; everything the
// body computes is covered by it.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <vector>

#include "support/cancel.h"

namespace dlp::parallel {

/// Worker-count request for a parallel region.  0 picks the scoped /
/// environment default (see resolve_threads); 1 forces the serial path.
struct ParallelOptions {
    int threads = 0;
};

/// Resolves a requested worker count, in priority order: the explicit
/// request, an enclosing ScopedThreads, the DLPROJ_THREADS environment
/// variable, then std::thread::hardware_concurrency().  Always >= 1.
int resolve_threads(int requested);
inline int resolve_threads(const ParallelOptions& options) {
    return resolve_threads(options.threads);
}

/// RAII default-worker-count override for the enclosing scope (per thread):
/// every parallel region below that does not request an explicit count uses
/// this one.  Nests; destruction restores the previous default.
class ScopedThreads {
public:
    explicit ScopedThreads(int threads);
    ~ScopedThreads();
    ScopedThreads(const ScopedThreads&) = delete;
    ScopedThreads& operator=(const ScopedThreads&) = delete;

private:
    int prev_;
};

/// Runs body(begin, end, worker) over disjoint chunks of [0, n), each at
/// most `grain` items, from `resolve_threads(threads)` workers.  `worker`
/// indexes per-worker scratch (dense, 0-based, stable within the call).
/// Exceptions thrown by the body cancel remaining chunks and the first one
/// is rethrown on the calling thread; the shared pool stays usable.
///
/// Preconditions: `body` must tolerate any chunk-to-worker assignment
/// (write only to per-item slots or worker-indexed scratch, no order
/// dependence between chunks) — that is what makes results independent of
/// the worker count.  `body` outlives the call (it blocks until every
/// chunk finished or was abandoned).
///
/// `cancel` enables cooperative cancellation: the token is checked before
/// every chunk claim (including on the serial path, which then runs
/// chunk-by-chunk), so a cancelled region stops issuing new chunks and
/// returns normally once in-flight chunks finish.  Which items ran is
/// unspecified after a cancel — callers needing prefix-consistent partial
/// results must cancel at their own unit boundaries instead (see the fault
/// simulators' budget-aware apply()).
void parallel_for(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t begin, std::size_t end, int worker)>&
        body,
    int threads = 0, const support::CancelToken* cancel = nullptr);

/// Deterministic chunked reduction: map(begin, end) is evaluated once per
/// fixed grain-sized chunk of [0, n) and the partials are combined serially
/// in chunk order, so the result is bit-identical for any worker count.
template <typename T, typename MapFn, typename CombineFn>
T parallel_reduce(std::size_t n, std::size_t grain, T init, MapFn map,
                  CombineFn combine, int threads = 0) {
    if (grain == 0) grain = 1;
    const std::size_t chunks = (n + grain - 1) / grain;
    std::vector<T> partial(chunks, init);
    parallel_for(
        chunks, 1,
        [&](std::size_t cb, std::size_t ce, int) {
            for (std::size_t c = cb; c < ce; ++c) {
                const std::size_t b = c * grain;
                partial[c] = map(b, std::min(n, b + grain));
            }
        },
        threads);
    T acc = init;
    for (std::size_t c = 0; c < chunks; ++c) acc = combine(acc, partial[c]);
    return acc;
}

}  // namespace dlp::parallel
