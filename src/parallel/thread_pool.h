// Shared fork-join thread pool: a fixed set of persistent worker threads
// that parallel regions (see parallel_for.h) fan work out to.  Workers are
// lazily spawned up to the largest participant count ever requested and
// sleep between regions, so a region costs one wake/sleep round trip, not a
// thread spawn.
//
// Worker 0 is always the calling thread; a region with `participants == 1`
// (or one opened from inside another region) runs entirely inline, which is
// what makes the serial path and the nested case trivially correct.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dlp::parallel {

class ThreadPool {
public:
    /// The process-wide pool all parallel regions share.
    static ThreadPool& global();

    /// Runs job(worker) for worker = 0..participants-1, worker 0 on the
    /// calling thread, and blocks until every participant returns.  Calls
    /// from inside a running region execute job(0) inline (no deadlock, and
    /// work-stealing loops still cover the whole range from one worker).
    /// `job` must not throw; parallel_for converts exceptions before here.
    void run(int participants, const std::function<void(int)>& job);

    /// True while the current thread is executing inside a region.
    static bool in_parallel_region();

    ~ThreadPool();
    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

private:
    ThreadPool() = default;
    void helper_loop(int worker_id);

    std::mutex mu_;
    std::condition_variable cv_start_;
    std::condition_variable cv_done_;
    std::vector<std::thread> helpers_;          ///< helper i has worker id i+1
    const std::function<void(int)>* job_ = nullptr;
    std::uint64_t generation_ = 0;  ///< bumped per region; wakes helpers
    int active_helpers_ = 0;        ///< helpers participating this region
    int remaining_ = 0;             ///< participants still running
    bool shutdown_ = false;
};

}  // namespace dlp::parallel
