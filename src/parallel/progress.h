// Progress observer shared by the staged experiment runner and the
// long-running simulators: (stage name, work done, work total).  Callbacks
// are always issued from the coordinating thread, never from pool workers,
// so the observer needs no synchronization.
#pragma once

#include <cstddef>
#include <functional>
#include <string_view>

namespace dlp::parallel {

using ProgressFn = std::function<void(std::string_view stage,
                                      std::size_t done, std::size_t total)>;

}  // namespace dlp::parallel
