#include "parallel/thread_pool.h"

#include "obs/telemetry.h"

namespace dlp::parallel {

namespace {
thread_local bool tl_in_region = false;
}

ThreadPool& ThreadPool::global() {
    static ThreadPool pool;
    return pool;
}

bool ThreadPool::in_parallel_region() { return tl_in_region; }

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lock(mu_);
        shutdown_ = true;
    }
    cv_start_.notify_all();
    for (std::thread& t : helpers_) t.join();
}

void ThreadPool::run(int participants, const std::function<void(int)>& job) {
    if (participants <= 1 || tl_in_region) {
        const bool prev = tl_in_region;
        tl_in_region = true;
        job(0);
        tl_in_region = prev;
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        while (static_cast<int>(helpers_.size()) < participants - 1) {
            const int id = static_cast<int>(helpers_.size()) + 1;
            helpers_.emplace_back([this, id] { helper_loop(id); });
        }
        job_ = &job;
        active_helpers_ = participants - 1;
        remaining_ = participants - 1;
        ++generation_;
    }
    cv_start_.notify_all();

    tl_in_region = true;
    job(0);
    tl_in_region = false;

    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [this] { return remaining_ == 0; });
    job_ = nullptr;
}

void ThreadPool::helper_loop(int worker_id) {
    obs::set_thread_name("pool-" + std::to_string(worker_id));
    std::uint64_t seen = 0;
    for (;;) {
        const std::function<void(int)>* job = nullptr;
#if DLPROJ_OBS_ENABLED
        // Idle = time parked on cv_start_ between jobs; clock reads only
        // happen while collection is on.
        DLP_OBS_COUNTER(c_idle, "pool.idle_ns");
        const std::int64_t idle_t0 = obs::enabled() ? obs::now_ns() : 0;
#endif
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_start_.wait(lock, [&] {
                return shutdown_ || generation_ != seen;
            });
#if DLPROJ_OBS_ENABLED
            if (idle_t0 != 0) DLP_OBS_ADD(c_idle, obs::now_ns() - idle_t0);
#endif
            if (shutdown_) return;
            seen = generation_;
            if (worker_id <= active_helpers_) job = job_;
        }
        if (!job) continue;  // spawned for a wider region than this one
        DLP_OBS_COUNTER(c_tasks, "pool.tasks");
        DLP_OBS_ADD(c_tasks, 1);
        tl_in_region = true;
        (*job)(worker_id);
        tl_in_region = false;
        bool done = false;
        {
            std::lock_guard<std::mutex> lock(mu_);
            done = --remaining_ == 0;
        }
        if (done) cv_done_.notify_one();
    }
}

}  // namespace dlp::parallel
