// Declarative experiment campaigns: a grid of experiment cells
// (circuits × rule decks × seeds × ATPG configs) described by a small
// INI/TOML-style spec file.
//
//   # 12-cell comparison grid
//   [campaign]
//   name = demo
//   target_yield = 0.75
//   max_vectors = 0            # 0 = unlimited
//
//   [grid]
//   circuits = c17, adder3, parity4
//   rules = bridging, uniform
//   seeds = 1, 2
//   atpg = quick
//   ndetect = 1, 2, 4, 8       # optional n-detection axis (default: 1)
//   analysis = off, on         # optional untestability-analysis axis
//   defect_stats = poisson, negbin:2   # optional clustering-backend axis
//
//   [atpg.quick]               # one section per named ATPG variant
//   max_random = 256
//   backtrack_limit = 1024
//   ndetect_mix = mixed        # top-up sources when ndetect > 1
//
// Grid axes are names: circuits resolve to the programmatic builders in
// netlist/builders.h (c17, c432, adder<N>, parity<N>, mux<N>, decoder<N>,
// alu<N>, hamming<N>) or to a .bench file path; rule decks resolve to the
// DefectStatistics presets (bridging, open, uniform) or to a .rules file
// path.  Cells enumerate in row-major grid order — circuit outermost, then
// rules, seeds, ATPG variant, n-detection target, analysis setting,
// defect-statistics backend — which is also the shard-partitioning and
// report order.  The newest axis is
// always innermost, so a spec without one enumerates exactly as before it
// existed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "atpg/generate.h"
#include "extract/defect_stats.h"
#include "netlist/circuit.h"

namespace dlp::campaign {

/// A named ATPG configuration; the grid seed overrides `options.seed`.
struct AtpgVariant {
    std::string name = "default";
    atpg::TestGenOptions options;
};

struct CampaignSpec {
    std::string name = "campaign";
    double target_yield = 0.75;  ///< flow::ExperimentOptions::target_yield
    bool weighted = true;        ///< false: unweighted ablation grid
    long long max_vectors = 0;   ///< per-cell vector budget (0 = unlimited)
    bool lint = true;            ///< per-cell static-analysis gate
    /// Fault-sim engine for every cell (sim::Engine registry name; "" =
    /// DLPROJ_ENGINE, else the registry default).  Engines are bit-
    /// identical, so this never enters artifact cache keys.
    std::string engine;

    // Grid axes (each must be non-empty; seeds/atpg/ndetect default to one
    // entry).
    std::vector<std::string> circuits;
    std::vector<std::string> rules;
    std::vector<std::uint64_t> seeds{1};
    std::vector<AtpgVariant> atpg{AtpgVariant{}};
    /// n-detection targets (atpg::TestGenOptions::ndetect per cell).  The
    /// default {1} is the classic single-detection grid; its cells hash,
    /// serialize, and report byte-identically to a spec that predates the
    /// axis.
    std::vector<int> ndetect{1};
    /// Static untestability-analysis settings (0 = off, 1 = on; the flow's
    /// analyze() stage per cell).  The default {0} is the classic grid;
    /// its cells hash, serialize, and report byte-identically to a spec
    /// that predates the axis.
    std::vector<int> analysis{0};
    /// Defect-statistics backends (model::parse_defect_stats descriptors:
    /// poisson, negbin:A, hier:wafer=A;die=A;region=F@A;...).  The default
    /// {poisson} is the classic grid; its cells hash, serialize, and
    /// report byte-identically to a spec that predates the axis, and
    /// non-Poisson cells share every pre-fit artifact (faults, tests,
    /// sim) with their Poisson siblings — only the cell artifact differs.
    std::vector<std::string> defect_stats{"poisson"};

    std::size_t cell_count() const {
        return circuits.size() * rules.size() * seeds.size() * atpg.size() *
               ndetect.size() * analysis.size() * defect_stats.size();
    }
    /// True when the grid actually sweeps n (any target != 1): reports add
    /// the per-n quality columns only for such campaigns.
    bool has_ndetect_axis() const {
        for (int n : ndetect)
            if (n != 1) return true;
        return false;
    }
    /// True when any cell runs the untestability analysis: reports add the
    /// corrected-vs-raw columns only for such campaigns.
    bool has_analysis_axis() const {
        for (int a : analysis)
            if (a != 0) return true;
        return false;
    }
    /// True when any cell uses a non-Poisson defect-statistics backend:
    /// reports add the clustered columns only for such campaigns.
    bool has_defect_stats_axis() const {
        for (const std::string& d : defect_stats)
            if (d != "poisson") return true;
        return false;
    }
};

/// One grid point, identified by its row-major index.
struct Cell {
    std::size_t index = 0;
    std::string circuit;
    std::string rules;
    std::uint64_t seed = 1;
    std::string atpg;  ///< variant name
    int ndetect = 1;   ///< n-detection target
    bool analysis = false;  ///< untestability-analysis setting
    std::string defect_stats = "poisson";  ///< backend descriptor
};

/// The cell at row-major grid `index` (< spec.cell_count()).
Cell cell_at(const CampaignSpec& spec, std::size_t index);

/// The ATPG variant named by `cell.atpg`; throws if absent.
const AtpgVariant& atpg_variant(const CampaignSpec& spec,
                                const std::string& name);

/// Parses a spec document; throws std::runtime_error with a line-numbered
/// message on malformed input, unknown keys, or an empty grid axis.
CampaignSpec parse_campaign_spec(const std::string& text);

/// Loads a spec file from disk.
CampaignSpec load_campaign_spec(const std::string& path);

/// Resolves a grid circuit name: a builders.h name (see file comment) or a
/// path ending in ".bench".  Throws std::runtime_error on unknown names.
netlist::Circuit resolve_circuit(const std::string& name);

/// Resolves a rule-deck name: bridging (alias cmos_bridging_dominant),
/// open (open_dominant), uniform, or a path ending in ".rules".
extract::DefectStatistics resolve_rules(const std::string& name);

/// Deterministic shard partition `index/count` for CI fan-out.
struct Shard {
    int index = 0;
    int count = 1;
};

/// Parses "i/n" (0 <= i < n); throws std::runtime_error otherwise.
Shard parse_shard(const std::string& text);

/// The cell indices shard `shard` owns out of `total` cells, ascending.
/// Cells are dealt round-robin (cell c goes to shard c mod count), so for
/// every count the shards are disjoint, cover the grid, and stay balanced
/// to within one cell.
std::vector<std::size_t> shard_cells(std::size_t total, const Shard& shard);

}  // namespace dlp::campaign
