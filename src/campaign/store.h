// Content-addressed on-disk artifact cache for campaign runs.
//
// Every artifact is addressed by the full canonical *key text* describing
// the inputs it was computed from (circuit bench text hash, rule-deck hash,
// every option that can change the result).  The key is hashed (FNV-1a 64)
// into the object path, but the complete key is stored in the object header
// and compared verbatim on lookup, so a hash collision degrades to a miss,
// never to a wrong artifact.  The payload travels with its own hash; a
// mismatch (bit rot, a torn write from a crashed process, manual tampering)
// is detected on read, counted, and treated as a miss so the artifact is
// recomputed and rewritten.
//
// Commits are atomic: objects are written to a temp file in the same
// directory and renamed into place, so a campaign killed mid-write never
// leaves a half-committed object behind, and an interrupted campaign
// resumes from the last committed artifact.
//
// Object layout: <root>/objects/<hh>/<hash16>-<kind>  where <hh> is the
// first hex byte of the key hash (fan-out), <hash16> the full 64-bit key
// hash, and <kind> the artifact kind slug ("cell", "tests", ...).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace dlp::campaign {

/// FNV-1a 64-bit hash (stable across platforms and runs; not
/// cryptographic — collisions are handled by full-key comparison).
std::uint64_t fnv1a64(std::string_view data);

/// 16-char lowercase hex of a 64-bit value.
std::string hex64(std::uint64_t v);

/// The DLPROJ_CACHE environment override: default artifact-cache root for
/// tools that are not given --cache-dir.  Empty when unset.
std::string env_cache_dir();

class ArtifactStore {
public:
    /// `root` = cache directory (created lazily on first put).  An empty
    /// root disables the store: every get() misses, every put() is a no-op.
    explicit ArtifactStore(std::string root);

    bool enabled() const { return !root_.empty(); }
    const std::string& root() const { return root_; }

    /// Looks up the artifact of `kind` for the canonical `key`.  Returns
    /// the payload on a verified hit; std::nullopt on a miss or on a
    /// corrupted/foreign object (counted separately).
    std::optional<std::string> get(std::string_view kind,
                                   std::string_view key);

    /// Atomically commits the payload for (kind, key), overwriting any
    /// previous object.  Throws std::runtime_error on I/O failure.
    void put(std::string_view kind, std::string_view key,
             std::string_view payload);

    /// On-disk object path for (kind, key) — exposed so tests can corrupt
    /// an entry deliberately.
    std::string object_path(std::string_view kind,
                            std::string_view key) const;

    // Accounting for this store instance (campaign stats + obs counters
    // mirror these).
    std::size_t hits() const { return hits_; }
    std::size_t misses() const { return misses_; }
    std::size_t corrupt() const { return corrupt_; }
    std::size_t writes() const { return writes_; }

private:
    std::string root_;
    std::size_t hits_ = 0;
    std::size_t misses_ = 0;
    std::size_t corrupt_ = 0;
    std::size_t writes_ = 0;
};

}  // namespace dlp::campaign
