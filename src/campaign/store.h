// Content-addressed on-disk artifact cache for campaign runs.
//
// Every artifact is addressed by the full canonical *key text* describing
// the inputs it was computed from (circuit bench text hash, rule-deck hash,
// every option that can change the result).  The key is hashed (FNV-1a 64)
// into the object path, but the complete key is stored in the object header
// and compared verbatim on lookup, so a hash collision degrades to a miss,
// never to a wrong artifact.  The payload travels with its own hash; a
// mismatch (bit rot, a torn write from a crashed process, manual tampering)
// is detected on read, counted, and treated as a miss so the artifact is
// recomputed and rewritten.
//
// Commits are atomic: objects are written to a unique temp file in the
// same directory and renamed into place, so a campaign killed mid-write
// never leaves a half-committed object behind, and an interrupted campaign
// resumes from the last committed artifact.
//
// Crash-safe sessions: every put() additionally journals its intent to
// <root>/journal.wal (an "I <pid> <seq> <object>" line flushed *before*
// the rename, paired with a "C <pid> <seq>" line after).  A process
// SIGKILLed anywhere in the commit window leaves an unpaired intent;
// recover_store() replays the journal on the next start, verifies every
// object an unpaired intent touches, quarantines torn ones (moved to
// <root>/quarantine/, never deleted — they are evidence), sweeps abandoned
// temp files, and truncates the journal.  Recovery must run while no other
// process is writing the store (daemon startup, CLI startup).
//
// Object layout: <root>/objects/<hh>/<hash16>-<kind>  where <hh> is the
// first hex byte of the key hash (fan-out), <hash16> the full 64-bit key
// hash, and <kind> the artifact kind slug ("cell", "tests", ...).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace dlp::campaign {

/// FNV-1a 64-bit hash (stable across platforms and runs; not
/// cryptographic — collisions are handled by full-key comparison).
std::uint64_t fnv1a64(std::string_view data);

/// 16-char lowercase hex of a 64-bit value.
std::string hex64(std::uint64_t v);

/// The DLPROJ_CACHE environment override: default artifact-cache root for
/// tools that are not given --cache-dir.  Empty when unset.
std::string env_cache_dir();

class ArtifactStore {
public:
    /// `root` = cache directory (created lazily on first put).  An empty
    /// root disables the store: every get() misses, every put() is a no-op.
    explicit ArtifactStore(std::string root);

    bool enabled() const { return !root_.empty(); }
    const std::string& root() const { return root_; }

    /// Looks up the artifact of `kind` for the canonical `key`.  Returns
    /// the payload on a verified hit; std::nullopt on a miss or on a
    /// corrupted/foreign object (counted separately).
    std::optional<std::string> get(std::string_view kind,
                                   std::string_view key);

    /// Atomically commits the payload for (kind, key), overwriting any
    /// previous object.  Throws std::runtime_error on I/O failure.
    void put(std::string_view kind, std::string_view key,
             std::string_view payload);

    /// On-disk object path for (kind, key) — exposed so tests can corrupt
    /// an entry deliberately.
    std::string object_path(std::string_view kind,
                            std::string_view key) const;

    // Accounting for this store instance (campaign stats + obs counters
    // mirror these).
    std::size_t hits() const { return hits_; }
    std::size_t misses() const { return misses_; }
    std::size_t corrupt() const { return corrupt_; }
    std::size_t writes() const { return writes_; }

private:
    void journal_append(const std::string& record);

    std::string root_;
    std::size_t hits_ = 0;
    std::size_t misses_ = 0;
    std::size_t corrupt_ = 0;
    std::size_t writes_ = 0;
};

/// What recover_store() found and fixed.
struct RecoveryReport {
    std::size_t intents = 0;      ///< journal intent records examined
    std::size_t unpaired = 0;     ///< intents with no matching commit
    std::size_t verified = 0;     ///< objects behind unpaired intents that
                                  ///< passed the full integrity check
    std::size_t quarantined = 0;  ///< torn objects moved to quarantine/
    std::size_t stale_tmps = 0;   ///< abandoned temp files removed
    bool clean() const { return quarantined == 0 && stale_tmps == 0; }
};

/// Human-readable one-line summary ("journal clean" / what was healed).
std::string recovery_summary(const RecoveryReport& report);

/// Replays the write-ahead journal of the store at `root` and self-heals
/// the crash window: verifies objects behind unpaired intents, moves torn
/// objects to <root>/quarantine/, removes stale "*.tmp.*" temp files under
/// objects/, and truncates the journal.  Safe on a missing or journal-less
/// root (returns an all-zero report).  Must not run concurrently with a
/// writer on the same root.  Throws std::runtime_error on I/O failure.
RecoveryReport recover_store(const std::string& root);

/// Integrity check used by recovery and tests: true iff `bytes` is a
/// complete, self-consistent artifact object (magic, header, sizes,
/// payload hash) — no expected key needed.
bool verify_object_bytes(const std::string& bytes);

}  // namespace dlp::campaign
