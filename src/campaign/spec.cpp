#include "campaign/spec.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "extract/rules_parser.h"
#include "gatesim/engine.h"
#include "model/defect_stats_model.h"
#include "netlist/bench_parser.h"
#include "netlist/builders.h"

namespace dlp::campaign {

namespace {

std::string trim(const std::string& s) {
    size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
    return s.substr(b, e - b);
}

std::vector<std::string> split_list(const std::string& s) {
    std::vector<std::string> out;
    std::string item;
    std::istringstream in(s);
    while (std::getline(in, item, ',')) {
        item = trim(item);
        if (!item.empty()) out.push_back(item);
    }
    return out;
}

[[noreturn]] void fail(int line, const std::string& what) {
    throw std::runtime_error("campaign spec:" + std::to_string(line) + ": " +
                             what);
}

long long parse_int(const std::string& v, int line) {
    try {
        size_t pos = 0;
        const long long n = std::stoll(v, &pos);
        if (pos != v.size()) fail(line, "trailing junk in integer '" + v + "'");
        return n;
    } catch (const std::runtime_error&) {
        throw;
    } catch (const std::exception&) {
        fail(line, "expected an integer, got '" + v + "'");
    }
}

double parse_double(const std::string& v, int line) {
    try {
        size_t pos = 0;
        const double d = std::stod(v, &pos);
        if (pos != v.size()) fail(line, "trailing junk in number '" + v + "'");
        return d;
    } catch (const std::runtime_error&) {
        throw;
    } catch (const std::exception&) {
        fail(line, "expected a number, got '" + v + "'");
    }
}

bool parse_bool(const std::string& v, int line) {
    if (v == "true" || v == "on" || v == "1") return true;
    if (v == "false" || v == "off" || v == "0") return false;
    fail(line, "expected a boolean (true/false/on/off/1/0), got '" + v + "'");
}

bool ends_with(const std::string& s, const char* suffix) {
    const std::string suf(suffix);
    return s.size() >= suf.size() &&
           s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
}

/// Parses "<prefix><N>" into N; -1 when `name` does not match.
int int_suffix(const std::string& name, const char* prefix) {
    const std::string pre(prefix);
    if (name.size() <= pre.size() || name.compare(0, pre.size(), pre) != 0)
        return -1;
    int n = 0;
    for (size_t i = pre.size(); i < name.size(); ++i) {
        const char c = name[i];
        if (c < '0' || c > '9') return -1;
        n = n * 10 + (c - '0');
    }
    return n;
}

}  // namespace

Cell cell_at(const CampaignSpec& spec, std::size_t index) {
    const std::size_t nd = spec.defect_stats.size();
    const std::size_t nz = spec.analysis.size();
    const std::size_t nn = spec.ndetect.size();
    const std::size_t na = spec.atpg.size();
    const std::size_t ns = spec.seeds.size();
    const std::size_t nr = spec.rules.size();
    Cell c;
    c.index = index;
    // Newest axis innermost: a spec without it enumerates as before.
    c.defect_stats = spec.defect_stats[index % nd];
    index /= nd;
    c.analysis = spec.analysis[index % nz] != 0;
    index /= nz;
    c.ndetect = spec.ndetect[index % nn];
    index /= nn;
    c.atpg = spec.atpg[index % na].name;
    index /= na;
    c.seed = spec.seeds[index % ns];
    index /= ns;
    c.rules = spec.rules[index % nr];
    index /= nr;
    c.circuit = spec.circuits.at(index);
    return c;
}

const AtpgVariant& atpg_variant(const CampaignSpec& spec,
                                const std::string& name) {
    for (const AtpgVariant& v : spec.atpg)
        if (v.name == name) return v;
    throw std::runtime_error("unknown ATPG variant '" + name + "'");
}

CampaignSpec parse_campaign_spec(const std::string& text) {
    CampaignSpec spec;
    spec.seeds.clear();
    spec.atpg.clear();
    std::vector<std::string> atpg_selection;  // [grid] atpg = ...

    std::istringstream in(text);
    std::string raw;
    std::string section;
    int line = 0;
    while (std::getline(in, raw)) {
        ++line;
        const size_t hash = raw.find('#');
        if (hash != std::string::npos) raw.erase(hash);
        const std::string s = trim(raw);
        if (s.empty()) continue;
        if (s.front() == '[') {
            if (s.back() != ']') fail(line, "unterminated section header");
            section = trim(s.substr(1, s.size() - 2));
            if (section.rfind("atpg.", 0) == 0) {
                AtpgVariant v;
                v.name = section.substr(5);
                if (v.name.empty()) fail(line, "empty ATPG variant name");
                for (const AtpgVariant& prev : spec.atpg)
                    if (prev.name == v.name)
                        fail(line, "duplicate ATPG variant '" + v.name + "'");
                spec.atpg.push_back(std::move(v));
            } else if (section != "campaign" && section != "grid") {
                fail(line, "unknown section [" + section + "]");
            }
            continue;
        }
        const size_t eq = s.find('=');
        if (eq == std::string::npos) fail(line, "expected 'key = value'");
        const std::string key = trim(s.substr(0, eq));
        const std::string value = trim(s.substr(eq + 1));
        if (key.empty()) fail(line, "empty key");
        if (section == "campaign") {
            if (key == "name")
                spec.name = value;
            else if (key == "target_yield")
                spec.target_yield = parse_double(value, line);
            else if (key == "max_vectors")
                spec.max_vectors = parse_int(value, line);
            else if (key == "weighted")
                spec.weighted = parse_bool(value, line);
            else if (key == "lint")
                spec.lint = parse_bool(value, line);
            else if (key == "engine") {
                if (!sim::find_engine(value))
                    fail(line, "unknown engine '" + value + "'");
                spec.engine = value;
            } else
                fail(line, "unknown [campaign] key '" + key + "'");
        } else if (section == "grid") {
            if (key == "circuits")
                spec.circuits = split_list(value);
            else if (key == "rules")
                spec.rules = split_list(value);
            else if (key == "seeds") {
                spec.seeds.clear();
                for (const std::string& v : split_list(value))
                    spec.seeds.push_back(
                        static_cast<std::uint64_t>(parse_int(v, line)));
            } else if (key == "atpg")
                atpg_selection = split_list(value);
            else if (key == "ndetect") {
                spec.ndetect.clear();
                for (const std::string& v : split_list(value)) {
                    const long long n = parse_int(v, line);
                    if (n < 1 || n > 64)
                        fail(line, "ndetect target out of range [1, 64]: '" +
                                       v + "'");
                    spec.ndetect.push_back(static_cast<int>(n));
                }
                if (spec.ndetect.empty())
                    fail(line, "[grid] ndetect is empty");
            } else if (key == "analysis") {
                spec.analysis.clear();
                for (const std::string& v : split_list(value))
                    spec.analysis.push_back(parse_bool(v, line) ? 1 : 0);
                if (spec.analysis.empty())
                    fail(line, "[grid] analysis is empty");
            } else if (key == "defect_stats") {
                spec.defect_stats.clear();
                for (const std::string& v : split_list(value)) {
                    // Canonicalize through the model parser so equal
                    // backends spelled differently ("negbin:inf" vs
                    // "poisson") land on one cache key, and bad
                    // descriptors fail at spec-parse time with a line.
                    try {
                        spec.defect_stats.push_back(
                            model::parse_defect_stats(v).describe());
                    } catch (const std::invalid_argument& e) {
                        fail(line, e.what());
                    }
                }
                if (spec.defect_stats.empty())
                    fail(line, "[grid] defect_stats is empty");
            } else
                fail(line, "unknown [grid] key '" + key + "'");
        } else if (section.rfind("atpg.", 0) == 0) {
            atpg::TestGenOptions& o = spec.atpg.back().options;
            if (key == "random_block")
                o.random_block = static_cast<int>(parse_int(value, line));
            else if (key == "max_random")
                o.max_random = static_cast<int>(parse_int(value, line));
            else if (key == "stale_blocks")
                o.stale_blocks = static_cast<int>(parse_int(value, line));
            else if (key == "backtrack_limit")
                o.backtrack_limit = static_cast<int>(parse_int(value, line));
            else if (key == "ndetect_mix") {
                try {
                    o.ndetect_mix = atpg::parse_ndetect_mix(value);
                } catch (const std::invalid_argument& e) {
                    fail(line, e.what());
                }
            } else
                fail(line, "unknown [" + section + "] key '" + key + "'");
        } else {
            fail(line, "key outside any section");
        }
    }

    if (spec.seeds.empty()) spec.seeds.push_back(1);
    if (!atpg_selection.empty()) {
        // The grid selects variants by name; "default" is always available.
        std::vector<AtpgVariant> selected;
        for (const std::string& name : atpg_selection) {
            bool found = false;
            for (const AtpgVariant& v : spec.atpg)
                if (v.name == name) {
                    selected.push_back(v);
                    found = true;
                    break;
                }
            if (!found && name == "default") {
                selected.push_back(AtpgVariant{});
                found = true;
            }
            if (!found)
                throw std::runtime_error(
                    "campaign spec: [grid] atpg names undefined variant '" +
                    name + "'");
        }
        spec.atpg = std::move(selected);
    }
    if (spec.atpg.empty()) spec.atpg.push_back(AtpgVariant{});
    if (spec.circuits.empty())
        throw std::runtime_error("campaign spec: [grid] circuits is empty");
    if (spec.rules.empty())
        throw std::runtime_error("campaign spec: [grid] rules is empty");
    return spec;
}

CampaignSpec load_campaign_spec(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot open " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return parse_campaign_spec(buf.str());
}

netlist::Circuit resolve_circuit(const std::string& name) {
    if (ends_with(name, ".bench")) return netlist::load_bench_file(name);
    if (name == "c17") return netlist::build_c17();
    if (name == "c432") return netlist::build_c432();
    if (int n = int_suffix(name, "adder"); n > 0)
        return netlist::build_ripple_adder(n);
    if (int n = int_suffix(name, "parity"); n > 1)
        return netlist::build_parity_tree(n);
    if (int n = int_suffix(name, "mux"); n > 0)
        return netlist::build_mux_tree(n);
    if (int n = int_suffix(name, "decoder"); n > 0)
        return netlist::build_decoder(n);
    if (int n = int_suffix(name, "alu"); n > 0) return netlist::build_alu(n);
    if (int n = int_suffix(name, "hamming"); n > 0)
        return netlist::build_hamming_corrector(n);
    throw std::runtime_error("unknown campaign circuit '" + name +
                             "' (builders.h name or a .bench path)");
}

extract::DefectStatistics resolve_rules(const std::string& name) {
    if (ends_with(name, ".rules")) return extract::load_defect_rules(name);
    if (name == "bridging" || name == "cmos_bridging_dominant")
        return extract::DefectStatistics::cmos_bridging_dominant();
    if (name == "open" || name == "open_dominant")
        return extract::DefectStatistics::open_dominant();
    if (name == "uniform") return extract::DefectStatistics::uniform();
    throw std::runtime_error("unknown campaign rule deck '" + name +
                             "' (bridging, open, uniform or a .rules path)");
}

Shard parse_shard(const std::string& text) {
    const size_t slash = text.find('/');
    if (slash == std::string::npos)
        throw std::runtime_error("shard must be of the form i/n: " + text);
    Shard s;
    try {
        s.index = std::stoi(text.substr(0, slash));
        s.count = std::stoi(text.substr(slash + 1));
    } catch (const std::exception&) {
        throw std::runtime_error("shard must be of the form i/n: " + text);
    }
    if (s.count < 1 || s.index < 0 || s.index >= s.count)
        throw std::runtime_error("shard index out of range: " + text);
    return s;
}

std::vector<std::size_t> shard_cells(std::size_t total, const Shard& shard) {
    std::vector<std::size_t> out;
    for (std::size_t c = static_cast<std::size_t>(shard.index); c < total;
         c += static_cast<std::size_t>(shard.count))
        out.push_back(c);
    return out;
}

}  // namespace dlp::campaign
