#include "campaign/artifacts.h"

#include <bit>
#include <cstdint>
#include <sstream>
#include <stdexcept>

#include "campaign/store.h"

namespace dlp::campaign {

std::string double_hex(double v) {
    return hex64(std::bit_cast<std::uint64_t>(v));
}

double parse_double_hex(const std::string& hex) {
    if (hex.size() != 16)
        throw std::runtime_error("campaign artifact: bad double '" + hex +
                                 "'");
    std::uint64_t bits = 0;
    for (const char c : hex) {
        bits <<= 4;
        if (c >= '0' && c <= '9')
            bits |= static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            bits |= static_cast<std::uint64_t>(c - 'a' + 10);
        else
            throw std::runtime_error("campaign artifact: bad double '" + hex +
                                     "'");
    }
    return std::bit_cast<double>(bits);
}

namespace {

[[noreturn]] void bad(const std::string& what) {
    throw std::runtime_error("campaign artifact: " + what);
}

/// Keyword-checked token reader over a serialized artifact.
class Reader {
public:
    explicit Reader(const std::string& text) : in_(text) {}

    void magic(const char* expected) {
        std::string line;
        if (!std::getline(in_, line) || line != expected)
            bad(std::string("expected magic '") + expected + "'");
    }
    /// Reads "<stem> <version>" and returns the version; rejects anything
    /// outside [1, max_version] (future versions are a cache miss, not a
    /// best-effort parse).
    int versioned_magic(const char* stem, int max_version) {
        std::string line;
        if (!std::getline(in_, line))
            bad(std::string("expected magic '") + stem + "'");
        std::istringstream ls(line);
        std::string word, extra;
        int v = 0;
        if (!(ls >> word >> v) || word != stem || (ls >> extra) || v < 1 ||
            v > max_version)
            bad("unsupported artifact header '" + line + "'");
        return v;
    }
    /// Reads "<key> <integer>".
    long long field(const char* key) {
        expect_key(key);
        long long v = 0;
        if (!(in_ >> v)) bad(std::string("bad integer for ") + key);
        return v;
    }
    /// Reads "<key> <hex double>".
    double dfield(const char* key) {
        expect_key(key);
        std::string tok;
        if (!(in_ >> tok)) bad(std::string("missing value for ") + key);
        return parse_double_hex(tok);
    }
    /// Reads "<key> <rest of line>" (value may contain spaces).
    std::string sfield(const char* key) {
        expect_key(key);
        std::string rest;
        std::getline(in_, rest);
        if (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);
        return rest;
    }
    /// Reads "<key> <count>" then `count` whitespace-separated ints.
    std::vector<int> ints(const char* key) {
        const long long n = field(key);
        if (n < 0) bad(std::string("negative count for ") + key);
        std::vector<int> out(static_cast<std::size_t>(n));
        for (int& v : out)
            if (!(in_ >> v)) bad(std::string("truncated ") + key);
        return out;
    }
    /// Reads "<key> <count>" then `count` hex doubles.
    flow::CoverageCurve curve(const char* key) {
        const long long n = field(key);
        if (n < 0) bad(std::string("negative count for ") + key);
        std::vector<double> out(static_cast<std::size_t>(n));
        std::string tok;
        for (double& v : out) {
            if (!(in_ >> tok)) bad(std::string("truncated ") + key);
            v = parse_double_hex(tok);
        }
        return flow::CoverageCurve(std::move(out));
    }
    std::istringstream& stream() { return in_; }

private:
    void expect_key(const char* key) {
        std::string word;
        if (!(in_ >> word) || word != key)
            bad("expected field '" + std::string(key) + "', got '" + word +
                "'");
    }
    std::istringstream in_;
};

void put_curve(std::ostream& out, const char* key,
               const flow::CoverageCurve& c) {
    out << key << " " << c.size();
    for (const double v : c.values) out << " " << double_hex(v);
    out << "\n";
}

void put_ints(std::ostream& out, const char* key,
              const std::vector<int>& v) {
    out << key << " " << v.size();
    for (const int x : v) out << " " << x;
    out << "\n";
}

support::StopReason stop_from_int(long long v) {
    if (v < 0 || v > static_cast<long long>(support::StopReason::LintFailed))
        bad("bad stop reason");
    return static_cast<support::StopReason>(v);
}

}  // namespace

std::string serialize_faults(const std::vector<gatesim::StuckAtFault>& f) {
    std::ostringstream out;
    out << "dlproj-faults 1\n";
    out << "count " << f.size() << "\n";
    for (const auto& s : f) {
        const long long reader =
            s.is_stem() ? -1 : static_cast<long long>(s.reader);
        out << s.net << " " << reader << " " << s.pin << " "
            << (s.stuck_value ? 1 : 0) << "\n";
    }
    return out.str();
}

std::vector<gatesim::StuckAtFault> parse_faults(const std::string& text) {
    Reader r(text);
    r.magic("dlproj-faults 1");
    const long long n = r.field("count");
    std::vector<gatesim::StuckAtFault> out(static_cast<std::size_t>(n));
    for (auto& f : out) {
        long long net = 0, reader = 0, pin = 0, sv = 0;
        if (!(r.stream() >> net >> reader >> pin >> sv))
            bad("truncated fault list");
        f.net = static_cast<netlist::NetId>(net);
        f.reader = reader < 0 ? netlist::kNoNet
                              : static_cast<netlist::NetId>(reader);
        f.pin = static_cast<int>(pin);
        f.stuck_value = sv != 0;
    }
    return out;
}

std::string serialize_tests(const flow::ExperimentRunner::TestSet& t) {
    // Classic single-detection test sets keep the version-1 byte layout;
    // n-detect sets (which carry extra tables) emit version 2, and sets
    // built with untestability marks (which carry the uncorrected curve)
    // emit version 3 — which includes the version-2 tables, trivial or
    // not, so each version is a strict extension of the last.
    const int version =
        !t.t_curve_raw.empty() ? 3 : (t.tests.ndetect > 1 ? 2 : 1);
    const bool v2 = version >= 2;
    std::ostringstream out;
    out << "dlproj-tests " << version << "\n";
    out << "stuck " << t.stuck.size() << "\n";
    for (const auto& s : t.stuck) {
        const long long reader =
            s.is_stem() ? -1 : static_cast<long long>(s.reader);
        out << s.net << " " << reader << " " << s.pin << " "
            << (s.stuck_value ? 1 : 0) << "\n";
    }
    out << "random_count " << t.tests.random_count << "\n";
    out << "deterministic_count " << t.tests.deterministic_count << "\n";
    out << "detected " << t.tests.detected << "\n";
    out << "redundant " << t.tests.redundant << "\n";
    out << "aborted " << t.tests.aborted << "\n";
    out << "untargeted " << t.tests.untargeted << "\n";
    out << "stop " << static_cast<int>(t.tests.stop) << "\n";
    if (v2) {
        out << "ndetect " << t.tests.ndetect << "\n";
        out << "topup_random " << t.tests.topup_random_count << "\n";
        out << "topup_weighted " << t.tests.topup_weighted_count << "\n";
        out << "topup_deterministic " << t.tests.topup_deterministic_count
            << "\n";
    }
    const std::size_t width =
        t.tests.vectors.empty() ? 0 : t.tests.vectors.front().size();
    out << "width " << width << "\n";
    out << "vectors " << t.tests.vectors.size() << "\n";
    for (const auto& v : t.tests.vectors) {
        std::string bits(v.size(), '0');
        for (std::size_t i = 0; i < v.size(); ++i)
            if (v[i]) bits[i] = '1';
        out << bits << "\n";
    }
    put_ints(out, "first_detected_at", t.tests.first_detected_at);
    if (v2) {
        put_ints(out, "detection_counts", t.tests.detection_counts);
        put_ints(out, "nth_detected_at", t.tests.nth_detected_at);
    }
    out << "status " << t.tests.status.size();
    for (const auto s : t.tests.status) out << " " << static_cast<int>(s);
    out << "\n";
    put_curve(out, "t_curve", t.t_curve);
    if (version >= 3) put_curve(out, "t_curve_raw", t.t_curve_raw);
    return out.str();
}

flow::ExperimentRunner::TestSet parse_tests(const std::string& text) {
    Reader r(text);
    const int version = r.versioned_magic("dlproj-tests", 3);
    flow::ExperimentRunner::TestSet t;
    const long long nstuck = r.field("stuck");
    t.stuck.resize(static_cast<std::size_t>(nstuck));
    for (auto& f : t.stuck) {
        long long net = 0, reader = 0, pin = 0, sv = 0;
        if (!(r.stream() >> net >> reader >> pin >> sv))
            bad("truncated fault list");
        f.net = static_cast<netlist::NetId>(net);
        f.reader = reader < 0 ? netlist::kNoNet
                              : static_cast<netlist::NetId>(reader);
        f.pin = static_cast<int>(pin);
        f.stuck_value = sv != 0;
    }
    t.tests.random_count = static_cast<int>(r.field("random_count"));
    t.tests.deterministic_count =
        static_cast<int>(r.field("deterministic_count"));
    t.tests.detected = static_cast<std::size_t>(r.field("detected"));
    t.tests.redundant = static_cast<std::size_t>(r.field("redundant"));
    t.tests.aborted = static_cast<std::size_t>(r.field("aborted"));
    t.tests.untargeted = static_cast<std::size_t>(r.field("untargeted"));
    t.tests.stop = stop_from_int(r.field("stop"));
    if (version >= 2) {
        t.tests.ndetect = static_cast<int>(r.field("ndetect"));
        if (t.tests.ndetect < 1) bad("bad ndetect target");
        t.tests.topup_random_count =
            static_cast<int>(r.field("topup_random"));
        t.tests.topup_weighted_count =
            static_cast<int>(r.field("topup_weighted"));
        t.tests.topup_deterministic_count =
            static_cast<int>(r.field("topup_deterministic"));
    }
    const long long width = r.field("width");
    const long long nvec = r.field("vectors");
    t.tests.vectors.resize(static_cast<std::size_t>(nvec));
    std::string bits;
    for (auto& v : t.tests.vectors) {
        if (!(r.stream() >> bits) ||
            bits.size() != static_cast<std::size_t>(width))
            bad("truncated vector set");
        v.resize(bits.size());
        for (std::size_t i = 0; i < bits.size(); ++i) v[i] = bits[i] == '1';
    }
    t.tests.first_detected_at = r.ints("first_detected_at");
    if (version >= 2) {
        t.tests.detection_counts = r.ints("detection_counts");
        t.tests.nth_detected_at = r.ints("nth_detected_at");
    } else {
        // Version-1 artifacts predate per-fault counting; at a target of
        // 1 the counts are exactly the 0/1 image of first detection.
        t.tests.detection_counts.reserve(t.tests.first_detected_at.size());
        for (const int at : t.tests.first_detected_at)
            t.tests.detection_counts.push_back(at >= 0 ? 1 : 0);
        t.tests.nth_detected_at = t.tests.first_detected_at;
    }
    const std::vector<int> status = r.ints("status");
    t.tests.status.reserve(status.size());
    for (const int s : status) {
        if (s < 0 || s > static_cast<int>(atpg::FaultStatus::Undetected))
            bad("bad fault status");
        t.tests.status.push_back(static_cast<atpg::FaultStatus>(s));
    }
    t.t_curve = r.curve("t_curve");
    if (version >= 3) t.t_curve_raw = r.curve("t_curve_raw");
    return t;
}

std::string serialize_simulation(
    const flow::ExperimentRunner::SimulationData& d) {
    std::ostringstream out;
    out << "dlproj-sim 1\n";
    out << "stop " << static_cast<int>(d.stop) << "\n";
    out << "vectors_done " << d.vectors_done << "\n";
    out << "vectors_total " << d.vectors_total << "\n";
    put_curve(out, "theta_curve", d.theta_curve);
    put_curve(out, "gamma_curve", d.gamma_curve);
    put_curve(out, "theta_iddq_curve", d.theta_iddq_curve);
    put_ints(out, "first_detected_at", d.first_detected_at);
    put_ints(out, "iddq_detected_at", d.iddq_detected_at);
    return out.str();
}

flow::ExperimentRunner::SimulationData parse_simulation(
    const std::string& text) {
    Reader r(text);
    r.magic("dlproj-sim 1");
    flow::ExperimentRunner::SimulationData d;
    d.stop = stop_from_int(r.field("stop"));
    d.vectors_done = static_cast<std::size_t>(r.field("vectors_done"));
    d.vectors_total = static_cast<std::size_t>(r.field("vectors_total"));
    d.theta_curve = r.curve("theta_curve");
    d.gamma_curve = r.curve("gamma_curve");
    d.theta_iddq_curve = r.curve("theta_iddq_curve");
    d.first_detected_at = r.ints("first_detected_at");
    d.iddq_detected_at = r.ints("iddq_detected_at");
    return d;
}

std::string serialize_cell(const CellResult& c) {
    const bool clustered =
        !c.defect_stats.empty() && c.defect_stats != "poisson";
    const int version =
        clustered ? 4 : (c.analysis ? 3 : (c.ndetect > 1 ? 2 : 1));
    const bool v2 = version >= 2;
    std::ostringstream out;
    out << "dlproj-cell " << version << "\n";
    out << "circuit " << c.circuit << "\n";
    out << "rules " << c.rules << "\n";
    out << "atpg " << c.atpg << "\n";
    out << "seed " << c.seed << "\n";
    out << "mapped_gates " << c.mapped_gates << "\n";
    out << "stuck_faults " << c.stuck_faults << "\n";
    out << "realistic_faults " << c.realistic_faults << "\n";
    out << "transistors " << c.transistors << "\n";
    out << "vector_count " << c.vector_count << "\n";
    out << "random_vectors " << c.random_vectors << "\n";
    out << "yield " << double_hex(c.yield) << "\n";
    out << "fit_r " << double_hex(c.fit_r) << "\n";
    out << "fit_theta_max " << double_hex(c.fit_theta_max) << "\n";
    out << "fit_rms " << double_hex(c.fit_rms) << "\n";
    if (v2) {
        out << "ndetect " << c.ndetect << "\n";
        out << "ndetect_min " << c.ndetect_min << "\n";
        out << "ndetect_mean " << double_hex(c.ndetect_mean) << "\n";
        out << "worst_case_coverage " << double_hex(c.worst_case_coverage)
            << "\n";
        out << "avg_case_coverage " << double_hex(c.avg_case_coverage)
            << "\n";
    }
    if (version >= 3) {
        out << "untestable_faults " << c.untestable_faults << "\n";
        out << "fit_raw_r " << double_hex(c.fit_raw_r) << "\n";
        out << "fit_raw_theta_max " << double_hex(c.fit_raw_theta_max)
            << "\n";
    }
    if (version >= 4) {
        // v3 implied analysis-on; v4 carries any analysis x backend
        // combination, so the flag becomes explicit.
        out << "analysis " << (c.analysis ? 1 : 0) << "\n";
        out << "defect_stats " << c.defect_stats << "\n";
        out << "stat_yield " << double_hex(c.stat_yield) << "\n";
        out << "fit_c_r " << double_hex(c.fit_c_r) << "\n";
        out << "fit_c_theta_max " << double_hex(c.fit_c_theta_max) << "\n";
        out << "fit_c_alpha " << double_hex(c.fit_c_alpha) << "\n";
        out << "fit_c_rms " << double_hex(c.fit_c_rms) << "\n";
    }
    out << "interruption " << (c.interruption.empty() ? "-" : c.interruption)
        << "\n";
    put_curve(out, "t_curve", c.t_curve);
    if (version >= 3) put_curve(out, "t_curve_raw", c.t_curve_raw);
    put_curve(out, "theta_curve", c.theta_curve);
    put_curve(out, "gamma_curve", c.gamma_curve);
    put_curve(out, "theta_iddq_curve", c.theta_iddq_curve);
    return out.str();
}

CellResult parse_cell(const std::string& text) {
    Reader r(text);
    const int version = r.versioned_magic("dlproj-cell", 4);
    CellResult c;
    c.circuit = r.sfield("circuit");
    c.rules = r.sfield("rules");
    c.atpg = r.sfield("atpg");
    c.seed = static_cast<std::uint64_t>(r.field("seed"));
    c.mapped_gates = static_cast<std::size_t>(r.field("mapped_gates"));
    c.stuck_faults = static_cast<std::size_t>(r.field("stuck_faults"));
    c.realistic_faults =
        static_cast<std::size_t>(r.field("realistic_faults"));
    c.transistors = static_cast<std::size_t>(r.field("transistors"));
    c.vector_count = static_cast<int>(r.field("vector_count"));
    c.random_vectors = static_cast<int>(r.field("random_vectors"));
    c.yield = r.dfield("yield");
    c.fit_r = r.dfield("fit_r");
    c.fit_theta_max = r.dfield("fit_theta_max");
    c.fit_rms = r.dfield("fit_rms");
    if (version >= 2) {
        c.ndetect = static_cast<int>(r.field("ndetect"));
        if (c.ndetect < 1) bad("bad ndetect target");
        c.ndetect_min = static_cast<int>(r.field("ndetect_min"));
        c.ndetect_mean = r.dfield("ndetect_mean");
        c.worst_case_coverage = r.dfield("worst_case_coverage");
        c.avg_case_coverage = r.dfield("avg_case_coverage");
    }
    if (version >= 3) {
        c.analysis = true;  // v3 only existed for analysis cells
        c.untestable_faults =
            static_cast<std::size_t>(r.field("untestable_faults"));
        c.fit_raw_r = r.dfield("fit_raw_r");
        c.fit_raw_theta_max = r.dfield("fit_raw_theta_max");
    }
    if (version >= 4) {
        c.analysis = r.field("analysis") != 0;
        c.defect_stats = r.sfield("defect_stats");
        if (c.defect_stats.empty()) bad("empty defect_stats descriptor");
        c.stat_yield = r.dfield("stat_yield");
        c.fit_c_r = r.dfield("fit_c_r");
        c.fit_c_theta_max = r.dfield("fit_c_theta_max");
        c.fit_c_alpha = r.dfield("fit_c_alpha");
        c.fit_c_rms = r.dfield("fit_c_rms");
    }
    c.interruption = r.sfield("interruption");
    if (c.interruption == "-") c.interruption.clear();
    c.t_curve = r.curve("t_curve");
    if (version >= 3) c.t_curve_raw = r.curve("t_curve_raw");
    c.theta_curve = r.curve("theta_curve");
    c.gamma_curve = r.curve("gamma_curve");
    c.theta_iddq_curve = r.curve("theta_iddq_curve");
    if (version < 2) {
        // A v1 cell is a classic n=1 cell, where every quality figure
        // collapses to the testable-fault coverage — which is exactly
        // T(k)'s final value (both are detected/testable with the same
        // integer-valued operands, so the doubles are bit-identical).
        // Deriving them here keeps a warm resume of an ndetect-axis grid
        // byte-identical to a cold run when its n=1 cells hit artifacts
        // written by a classic (or pre-n-detect) campaign.
        const double cov = c.t_curve.final();
        c.ndetect_mean = cov;
        c.worst_case_coverage = cov;
        c.avg_case_coverage = cov;
        c.ndetect_min = cov == 1.0 ? 1 : 0;
    }
    if (version < 4) {
        // Pre-backend artifacts are Poisson cells, where the clustered
        // yield IS the Poisson yield (the same e^-lambda bits).  Deriving
        // it keeps a warm resume of a defect_stats-axis grid
        // byte-identical to a cold run when its poisson cells hit
        // artifacts written by a classic campaign.
        c.stat_yield = c.yield;
    }
    return c;
}

std::string serialize_analysis(
    const flow::ExperimentRunner::AnalysisData& a) {
    std::ostringstream out;
    out << "dlproj-analysis 1\n";
    out << "stuck " << a.stuck.size() << "\n";
    for (const auto& s : a.stuck) {
        const long long reader =
            s.is_stem() ? -1 : static_cast<long long>(s.reader);
        out << s.net << " " << reader << " " << s.pin << " "
            << (s.stuck_value ? 1 : 0) << "\n";
    }
    out << "untestable " << a.untestable.size();
    for (const auto m : a.untestable) out << " " << static_cast<int>(m);
    out << "\n";
    out << "stop " << static_cast<int>(a.stop) << "\n";
    out << "pivots_done " << a.stats.pivots_done << "\n";
    out << "pivots_total " << a.stats.pivots_total << "\n";
    out << "implications " << a.stats.implications << "\n";
    out << "learned " << a.stats.learned << "\n";
    out << "constant_lines " << a.stats.constant_lines << "\n";
    out << "proofs " << a.stats.proofs << "\n";
    return out.str();
}

flow::ExperimentRunner::AnalysisData parse_analysis(
    const std::string& text) {
    Reader r(text);
    r.magic("dlproj-analysis 1");
    flow::ExperimentRunner::AnalysisData a;
    const long long nstuck = r.field("stuck");
    a.stuck.resize(static_cast<std::size_t>(nstuck));
    for (auto& f : a.stuck) {
        long long net = 0, reader = 0, pin = 0, sv = 0;
        if (!(r.stream() >> net >> reader >> pin >> sv))
            bad("truncated fault list");
        f.net = static_cast<netlist::NetId>(net);
        f.reader = reader < 0 ? netlist::kNoNet
                              : static_cast<netlist::NetId>(reader);
        f.pin = static_cast<int>(pin);
        f.stuck_value = sv != 0;
    }
    const std::vector<int> marks = r.ints("untestable");
    if (marks.size() != a.stuck.size())
        bad("untestable mask size mismatch");
    a.untestable.reserve(marks.size());
    for (const int m : marks) {
        if (m != 0 && m != 1) bad("bad untestable mark");
        a.untestable.push_back(static_cast<std::uint8_t>(m));
    }
    a.stop = stop_from_int(r.field("stop"));
    a.stats.pivots_done = static_cast<std::size_t>(r.field("pivots_done"));
    a.stats.pivots_total = static_cast<std::size_t>(r.field("pivots_total"));
    a.stats.implications =
        static_cast<std::uint64_t>(r.field("implications"));
    a.stats.learned = static_cast<std::uint64_t>(r.field("learned"));
    a.stats.constant_lines =
        static_cast<std::size_t>(r.field("constant_lines"));
    a.stats.proofs = static_cast<std::size_t>(r.field("proofs"));
    return a;
}

}  // namespace dlp::campaign
