#include "campaign/store.h"

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/telemetry.h"

namespace dlp::campaign {

namespace fs = std::filesystem;

std::uint64_t fnv1a64(std::string_view data) {
    std::uint64_t h = 1469598103934665603ull;
    for (const char c : data) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return h;
}

std::string hex64(std::uint64_t v) {
    static const char* digits = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<size_t>(i)] = digits[v & 0xf];
        v >>= 4;
    }
    return out;
}

std::string env_cache_dir() {
    const char* v = std::getenv("DLPROJ_CACHE");
    return v ? std::string(v) : std::string();
}

ArtifactStore::ArtifactStore(std::string root) : root_(std::move(root)) {}

std::string ArtifactStore::object_path(std::string_view kind,
                                       std::string_view key) const {
    const std::string h = hex64(fnv1a64(key));
    return root_ + "/objects/" + h.substr(0, 2) + "/" + h + "-" +
           std::string(kind);
}

namespace {

// Object format (header line-oriented, then raw bytes):
//   dlproj-artifact 1
//   kind <slug>
//   key-bytes <n>
//   payload-bytes <n>
//   payload-hash <hex16>
//   --
//   <key bytes><payload bytes>
constexpr char kMagic[] = "dlproj-artifact 1";

std::string render_object(std::string_view kind, std::string_view key,
                          std::string_view payload) {
    std::ostringstream out;
    out << kMagic << "\n"
        << "kind " << kind << "\n"
        << "key-bytes " << key.size() << "\n"
        << "payload-bytes " << payload.size() << "\n"
        << "payload-hash " << hex64(fnv1a64(payload)) << "\n"
        << "--\n"
        << key << payload;
    return out.str();
}

/// The parsed object header; `body` is the offset of the key bytes.
struct ObjectHeader {
    std::string kind;
    std::size_t key_bytes = 0;
    std::size_t payload_bytes = 0;
    std::string payload_hash;
    std::size_t body = 0;
};

/// Parses the line-oriented header; false on any structural defect
/// (including a body whose size disagrees with the declared lengths).
bool parse_header(const std::string& bytes, ObjectHeader& h) {
    std::istringstream in(bytes);
    std::string line;
    if (!std::getline(in, line) || line != kMagic) return false;
    std::string word;
    if (!(in >> word >> h.kind) || word != "kind") return false;
    if (!(in >> word >> h.key_bytes) || word != "key-bytes") return false;
    if (!(in >> word >> h.payload_bytes) || word != "payload-bytes")
        return false;
    if (!(in >> word >> h.payload_hash) || word != "payload-hash")
        return false;
    if (!std::getline(in, line)) return false;  // eat newline
    if (!std::getline(in, line) || line != "--") return false;
    const std::streampos pos = in.tellg();
    if (pos < 0) return false;
    h.body = static_cast<std::size_t>(pos);
    return bytes.size() - h.body == h.key_bytes + h.payload_bytes;
}

/// Parses and verifies an object; returns the payload or nullopt when the
/// object is malformed, of another kind/key, or fails its payload hash.
std::optional<std::string> parse_object(const std::string& bytes,
                                        std::string_view kind,
                                        std::string_view key,
                                        bool& corrupt) {
    corrupt = true;  // every early-out below is a corruption/foreignness
    ObjectHeader h;
    if (!parse_header(bytes, h)) return std::nullopt;
    const std::string_view stored_key(bytes.data() + h.body, h.key_bytes);
    if (h.kind != kind || stored_key != key) {
        // A different key with the same hash: not corruption, just a miss.
        corrupt = false;
        return std::nullopt;
    }
    std::string payload = bytes.substr(h.body + h.key_bytes, h.payload_bytes);
    if (hex64(fnv1a64(payload)) != h.payload_hash) return std::nullopt;
    corrupt = false;
    return payload;
}

std::string read_file_bytes(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

}  // namespace

bool verify_object_bytes(const std::string& bytes) {
    ObjectHeader h;
    if (!parse_header(bytes, h)) return false;
    const std::string payload =
        bytes.substr(h.body + h.key_bytes, h.payload_bytes);
    return hex64(fnv1a64(payload)) == h.payload_hash;
}

std::optional<std::string> ArtifactStore::get(std::string_view kind,
                                              std::string_view key) {
    DLP_OBS_COUNTER(c_hit, "campaign.store.hit");
    DLP_OBS_COUNTER(c_miss, "campaign.store.miss");
    DLP_OBS_COUNTER(c_corrupt, "campaign.store.corrupt");
    if (!enabled()) {
        ++misses_;
        DLP_OBS_ADD(c_miss, 1);
        return std::nullopt;
    }
    std::ifstream in(object_path(kind, key), std::ios::binary);
    if (!in) {
        ++misses_;
        DLP_OBS_ADD(c_miss, 1);
        return std::nullopt;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    bool corrupt = false;
    auto payload = parse_object(buf.str(), kind, key, corrupt);
    if (payload) {
        ++hits_;
        DLP_OBS_ADD(c_hit, 1);
        return payload;
    }
    if (corrupt) {
        ++corrupt_;
        DLP_OBS_ADD(c_corrupt, 1);
    }
    ++misses_;
    DLP_OBS_ADD(c_miss, 1);
    return std::nullopt;
}

void ArtifactStore::journal_append(const std::string& record) {
    // One open-append-close per record: puts happen at stage boundaries
    // (a handful per cell), and append mode keeps concurrent processes'
    // records from interleaving mid-line on POSIX filesystems.
    const std::string wal = root_ + "/journal.wal";
    std::ofstream out(wal, std::ios::binary | std::ios::app);
    if (!out) throw std::runtime_error("cannot open journal " + wal);
    out << record;
    out.flush();
    if (!out) throw std::runtime_error("journal write failed: " + wal);
}

void ArtifactStore::put(std::string_view kind, std::string_view key,
                        std::string_view payload) {
    if (!enabled()) return;
    const std::string path = object_path(kind, key);
    const fs::path target(path);
    std::error_code ec;
    fs::create_directories(target.parent_path(), ec);
    if (ec)
        throw std::runtime_error("cannot create cache directory " +
                                 target.parent_path().string() + ": " +
                                 ec.message());
    // Temp-then-rename keeps commits atomic on POSIX filesystems.  The
    // temp name carries pid + sequence so concurrent writers of the same
    // object never tear each other's temp file, and recovery can identify
    // abandoned ones.  The sequence is process-wide, not per-instance:
    // two store instances in one process (service worker threads) writing
    // the same object must not collide on the temp name, and the journal
    // pairs I/C records by (pid, seq) so the tag must be unique per
    // process too.
    static std::atomic<std::uint64_t> process_seq{0};
    const std::uint64_t seq =
        process_seq.fetch_add(1, std::memory_order_relaxed) + 1;
    const std::string tag =
        std::to_string(::getpid()) + " " + std::to_string(seq);
    const std::string tmp = path + ".tmp." + std::to_string(::getpid()) +
                            "." + std::to_string(seq);
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) throw std::runtime_error("cannot open " + tmp);
        out << render_object(kind, key, payload);
        if (!out) throw std::runtime_error("write failed: " + tmp);
    }
    // Intent record before the rename, commit record after: a SIGKILL
    // anywhere in between leaves an unpaired intent for recover_store().
    const std::string rel =
        fs::path(path).lexically_relative(fs::path(root_) / "objects")
            .generic_string();
    journal_append("I " + tag + " " + rel + "\n");
    fs::rename(tmp, target, ec);
    if (ec) throw std::runtime_error("cannot commit " + path + ": " +
                                     ec.message());
    journal_append("C " + tag + "\n");
    ++writes_;
    DLP_OBS_COUNTER(c_write, "campaign.store.write");
    DLP_OBS_ADD(c_write, 1);
}

std::string recovery_summary(const RecoveryReport& r) {
    if (r.intents == 0 && r.stale_tmps == 0) return "store journal clean";
    std::ostringstream out;
    out << "store recovery: " << r.intents << " journaled intent(s), "
        << r.unpaired << " unpaired, " << r.verified << " verified intact, "
        << r.quarantined << " torn object(s) quarantined, " << r.stale_tmps
        << " stale temp file(s) removed";
    return out.str();
}

RecoveryReport recover_store(const std::string& root) {
    RecoveryReport rep;
    if (root.empty()) return rep;
    const fs::path objects = fs::path(root) / "objects";
    const std::string wal = root + "/journal.wal";

    // 1. Replay the journal: pair I/C records by (pid, seq); what remains
    //    are commits a crash may have torn.
    std::map<std::pair<std::string, std::string>, std::string> open_intents;
    if (fs::exists(wal)) {
        std::ifstream in(wal, std::ios::binary);
        std::string line;
        while (std::getline(in, line)) {
            std::istringstream ls(line);
            std::string op, pid, seq;
            if (!(ls >> op >> pid >> seq)) continue;  // torn final line
            if (op == "I") {
                std::string rel;
                if (!(ls >> rel)) continue;
                ++rep.intents;
                open_intents[{pid, seq}] = rel;
            } else if (op == "C") {
                open_intents.erase({pid, seq});
            }
        }
    }
    rep.unpaired = open_intents.size();
    for (const auto& [id, rel] : open_intents) {
        const fs::path obj = objects / rel;
        std::error_code ec;
        if (!fs::exists(obj, ec)) continue;  // crashed before the rename
        if (verify_object_bytes(read_file_bytes(obj.string()))) {
            ++rep.verified;  // rename completed; only the C record is lost
            continue;
        }
        // Torn object: move it aside (never delete — it is evidence), so
        // the next lookup misses and recomputes.
        const fs::path qdir = fs::path(root) / "quarantine";
        fs::create_directories(qdir, ec);
        if (ec)
            throw std::runtime_error("cannot create " + qdir.string() +
                                     ": " + ec.message());
        std::string qname = obj.filename().string();
        fs::path qpath = qdir / qname;
        for (int n = 1; fs::exists(qpath); ++n)
            qpath = qdir / (qname + "." + std::to_string(n));
        fs::rename(obj, qpath, ec);
        if (ec)
            throw std::runtime_error("cannot quarantine " + obj.string() +
                                     ": " + ec.message());
        ++rep.quarantined;
    }

    // 2. Sweep abandoned temp files (a crash between the temp write and
    //    the rename, or a pre-journal ".tmp" from an older layout).
    if (fs::exists(objects)) {
        for (auto it = fs::recursive_directory_iterator(objects);
             it != fs::recursive_directory_iterator(); ++it) {
            if (!it->is_regular_file()) continue;
            const std::string name = it->path().filename().string();
            if (name.find(".tmp") == std::string::npos) continue;
            std::error_code ec;
            fs::remove(it->path(), ec);
            if (!ec) ++rep.stale_tmps;
        }
    }

    // 3. Truncate the journal: everything above has been settled.
    if (fs::exists(wal)) {
        std::ofstream trunc(wal, std::ios::binary | std::ios::trunc);
        if (!trunc)
            throw std::runtime_error("cannot truncate journal " + wal);
    }
    return rep;
}

}  // namespace dlp::campaign
