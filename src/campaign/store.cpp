#include "campaign/store.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/telemetry.h"

namespace dlp::campaign {

namespace fs = std::filesystem;

std::uint64_t fnv1a64(std::string_view data) {
    std::uint64_t h = 1469598103934665603ull;
    for (const char c : data) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return h;
}

std::string hex64(std::uint64_t v) {
    static const char* digits = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<size_t>(i)] = digits[v & 0xf];
        v >>= 4;
    }
    return out;
}

std::string env_cache_dir() {
    const char* v = std::getenv("DLPROJ_CACHE");
    return v ? std::string(v) : std::string();
}

ArtifactStore::ArtifactStore(std::string root) : root_(std::move(root)) {}

std::string ArtifactStore::object_path(std::string_view kind,
                                       std::string_view key) const {
    const std::string h = hex64(fnv1a64(key));
    return root_ + "/objects/" + h.substr(0, 2) + "/" + h + "-" +
           std::string(kind);
}

namespace {

// Object format (header line-oriented, then raw bytes):
//   dlproj-artifact 1
//   kind <slug>
//   key-bytes <n>
//   payload-bytes <n>
//   payload-hash <hex16>
//   --
//   <key bytes><payload bytes>
constexpr char kMagic[] = "dlproj-artifact 1";

std::string render_object(std::string_view kind, std::string_view key,
                          std::string_view payload) {
    std::ostringstream out;
    out << kMagic << "\n"
        << "kind " << kind << "\n"
        << "key-bytes " << key.size() << "\n"
        << "payload-bytes " << payload.size() << "\n"
        << "payload-hash " << hex64(fnv1a64(payload)) << "\n"
        << "--\n"
        << key << payload;
    return out.str();
}

/// Parses and verifies an object; returns the payload or nullopt when the
/// object is malformed, of another kind/key, or fails its payload hash.
std::optional<std::string> parse_object(const std::string& bytes,
                                        std::string_view kind,
                                        std::string_view key,
                                        bool& corrupt) {
    corrupt = true;  // every early-out below is a corruption/foreignness
    std::istringstream in(bytes);
    std::string line;
    if (!std::getline(in, line) || line != kMagic) return std::nullopt;
    std::string word, k;
    std::size_t key_bytes = 0, payload_bytes = 0;
    std::string payload_hash;
    if (!(in >> word >> k) || word != "kind") return std::nullopt;
    if (!(in >> word >> key_bytes) || word != "key-bytes") return std::nullopt;
    if (!(in >> word >> payload_bytes) || word != "payload-bytes")
        return std::nullopt;
    if (!(in >> word >> payload_hash) || word != "payload-hash")
        return std::nullopt;
    if (!std::getline(in, line)) return std::nullopt;  // eat newline
    if (!std::getline(in, line) || line != "--") return std::nullopt;
    const std::streampos pos = in.tellg();
    if (pos < 0) return std::nullopt;
    const auto body = static_cast<std::size_t>(pos);
    if (bytes.size() - body != key_bytes + payload_bytes) return std::nullopt;
    const std::string_view stored_key(bytes.data() + body, key_bytes);
    if (k != kind || stored_key != key) {
        // A different key with the same hash: not corruption, just a miss.
        corrupt = false;
        return std::nullopt;
    }
    std::string payload = bytes.substr(body + key_bytes, payload_bytes);
    if (hex64(fnv1a64(payload)) != payload_hash) return std::nullopt;
    corrupt = false;
    return payload;
}

}  // namespace

std::optional<std::string> ArtifactStore::get(std::string_view kind,
                                              std::string_view key) {
    DLP_OBS_COUNTER(c_hit, "campaign.store.hit");
    DLP_OBS_COUNTER(c_miss, "campaign.store.miss");
    DLP_OBS_COUNTER(c_corrupt, "campaign.store.corrupt");
    if (!enabled()) {
        ++misses_;
        DLP_OBS_ADD(c_miss, 1);
        return std::nullopt;
    }
    std::ifstream in(object_path(kind, key), std::ios::binary);
    if (!in) {
        ++misses_;
        DLP_OBS_ADD(c_miss, 1);
        return std::nullopt;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    bool corrupt = false;
    auto payload = parse_object(buf.str(), kind, key, corrupt);
    if (payload) {
        ++hits_;
        DLP_OBS_ADD(c_hit, 1);
        return payload;
    }
    if (corrupt) {
        ++corrupt_;
        DLP_OBS_ADD(c_corrupt, 1);
    }
    ++misses_;
    DLP_OBS_ADD(c_miss, 1);
    return std::nullopt;
}

void ArtifactStore::put(std::string_view kind, std::string_view key,
                        std::string_view payload) {
    if (!enabled()) return;
    const std::string path = object_path(kind, key);
    const fs::path target(path);
    std::error_code ec;
    fs::create_directories(target.parent_path(), ec);
    if (ec)
        throw std::runtime_error("cannot create cache directory " +
                                 target.parent_path().string() + ": " +
                                 ec.message());
    // Temp-then-rename keeps commits atomic on POSIX filesystems.
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) throw std::runtime_error("cannot open " + tmp);
        out << render_object(kind, key, payload);
        if (!out) throw std::runtime_error("write failed: " + tmp);
    }
    fs::rename(tmp, target, ec);
    if (ec) throw std::runtime_error("cannot commit " + path + ": " +
                                     ec.message());
    ++writes_;
    DLP_OBS_COUNTER(c_write, "campaign.store.write");
    DLP_OBS_ADD(c_write, 1);
}

}  // namespace dlp::campaign
