#include "campaign/report.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "model/defect_stats_model.h"
#include "model/dl_models.h"

namespace dlp::campaign {

namespace {

/// Shortest round-trip decimal for a double ("%.17g" is exact for IEEE
/// doubles; the formatting is locale-independent and stable run to run,
/// which the byte-identical report guarantees rely on).
std::string num(double v) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\') out.push_back('\\');
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out.push_back(c);
    }
    return out;
}

void put_curve_json(std::ostream& out, const char* name,
                    const flow::CoverageCurve& c, bool last = false) {
    out << "      \"" << name << "\": [";
    for (std::size_t i = 0; i < c.size(); ++i) {
        if (i) out << ", ";
        out << num(c[i]);
    }
    out << "]" << (last ? "" : ",") << "\n";
}

double residual_ppm(const CellResult& c) {
    // 1 - Y^(1-theta_max), the fitted residual-DL floor of eq (11).
    model::ProposedModel m{c.yield, c.fit_r, c.fit_theta_max};
    return model::to_ppm(m.residual_dl());
}

double dl_ppm(const CellResult& c) {
    // Achieved defect level from the measured weighted realistic
    // coverage, eq (3): DL = 1 - Y^(1-theta).  Reported per n-detect
    // cell so DL can be read directly against the target n.
    return model::to_ppm(model::weighted_dl(c.yield, c.theta_curve.final()));
}

double clustered_dl_ppm(const CellResult& c) {
    // DL under the cell's defect-statistics backend, at the Poisson mean
    // lambda = -ln(Y) (weight scaling is Poisson-based for every
    // backend).  Derived from serialized fields only, so a fresh cell and
    // a cache-hit cell report the same bytes.
    const model::DefectStatsModel backend = model::parse_defect_stats(
        c.defect_stats.empty() ? "poisson" : c.defect_stats);
    const double lambda = c.yield > 0.0 ? -std::log(c.yield) : 0.0;
    return model::to_ppm(backend.dl(lambda, c.theta_curve.final()));
}

}  // namespace

std::string report_json(const CampaignReport& report) {
    std::ostringstream out;
    out << "{\n";
    out << "  \"campaign\": \"" << json_escape(report.name) << "\",\n";
    out << "  \"cells\": [\n";
    for (std::size_t i = 0; i < report.cells.size(); ++i) {
        const CellResult& c = report.cells[i];
        out << "    {\n";
        out << "      \"index\": " << c.index << ",\n";
        out << "      \"circuit\": \"" << json_escape(c.circuit) << "\",\n";
        out << "      \"rules\": \"" << json_escape(c.rules) << "\",\n";
        out << "      \"seed\": " << c.seed << ",\n";
        out << "      \"atpg\": \"" << json_escape(c.atpg) << "\",\n";
        if (report.ndetect_axis)
            out << "      \"ndetect\": " << c.ndetect << ",\n";
        if (report.analysis_axis)
            out << "      \"analysis\": " << (c.analysis ? "true" : "false")
                << ",\n";
        if (report.defect_stats_axis)
            out << "      \"defect_stats\": \""
                << json_escape(c.defect_stats.empty() ? "poisson"
                                                      : c.defect_stats)
                << "\",\n";
        out << "      \"mapped_gates\": " << c.mapped_gates << ",\n";
        out << "      \"stuck_faults\": " << c.stuck_faults << ",\n";
        out << "      \"realistic_faults\": " << c.realistic_faults << ",\n";
        out << "      \"transistors\": " << c.transistors << ",\n";
        out << "      \"vector_count\": " << c.vector_count << ",\n";
        out << "      \"random_vectors\": " << c.random_vectors << ",\n";
        out << "      \"yield\": " << num(c.yield) << ",\n";
        out << "      \"t_final\": " << num(c.t_curve.final()) << ",\n";
        out << "      \"theta_final\": " << num(c.theta_curve.final())
            << ",\n";
        out << "      \"gamma_final\": " << num(c.gamma_curve.final())
            << ",\n";
        out << "      \"theta_iddq_final\": "
            << num(c.theta_iddq_curve.final()) << ",\n";
        out << "      \"fit\": {\"r\": " << num(c.fit_r)
            << ", \"theta_max\": " << num(c.fit_theta_max)
            << ", \"rms\": " << num(c.fit_rms)
            << ", \"residual_ppm\": " << num(residual_ppm(c)) << "},\n";
        if (report.ndetect_axis)
            out << "      \"ndetect_quality\": {\"min_detections\": "
                << c.ndetect_min << ", \"mean_detections\": "
                << num(c.ndetect_mean) << ", \"worst_case_coverage\": "
                << num(c.worst_case_coverage) << ", \"avg_case_coverage\": "
                << num(c.avg_case_coverage) << ", \"dl_ppm\": "
                << num(dl_ppm(c)) << "},\n";
        if (report.analysis_axis)
            out << "      \"testability\": {\"untestable_faults\": "
                << c.untestable_faults << ", \"t_raw_final\": "
                << num(c.t_curve_raw.final()) << ", \"fit_raw_r\": "
                << num(c.fit_raw_r) << ", \"fit_raw_theta_max\": "
                << num(c.fit_raw_theta_max) << "},\n";
        if (report.defect_stats_axis)
            out << "      \"clustering\": {\"stat_yield\": "
                << num(c.stat_yield) << ", \"dl_ppm\": "
                << num(clustered_dl_ppm(c)) << ", \"fit_c_r\": "
                << num(c.fit_c_r) << ", \"fit_c_theta_max\": "
                << num(c.fit_c_theta_max) << ", \"fit_c_alpha\": "
                << num(c.fit_c_alpha) << ", \"fit_c_rms\": "
                << num(c.fit_c_rms) << "},\n";
        out << "      \"interruption\": \"" << json_escape(c.interruption)
            << "\",\n";
        put_curve_json(out, "t_curve", c.t_curve);
        if (report.analysis_axis)
            put_curve_json(out, "t_curve_raw", c.t_curve_raw);
        put_curve_json(out, "theta_curve", c.theta_curve);
        put_curve_json(out, "gamma_curve", c.gamma_curve);
        put_curve_json(out, "theta_iddq_curve", c.theta_iddq_curve,
                       /*last=*/true);
        out << "    }" << (i + 1 < report.cells.size() ? "," : "") << "\n";
    }
    out << "  ]\n";
    out << "}\n";
    return out.str();
}

std::string report_csv(const CampaignReport& report, bool header) {
    std::ostringstream out;
    if (header) {
        out << "index,circuit,rules,seed,atpg,";
        if (report.ndetect_axis) out << "ndetect,";
        if (report.analysis_axis) out << "analysis,";
        if (report.defect_stats_axis) out << "defect_stats,";
        out << "mapped_gates,stuck_faults,"
               "realistic_faults,vectors,yield,t_final,theta_final,"
               "gamma_final,theta_iddq_final,fit_r,fit_theta_max,"
               "residual_ppm,";
        if (report.ndetect_axis)
            out << "min_detections,mean_detections,worst_case_coverage,"
                   "avg_case_coverage,dl_ppm,";
        if (report.analysis_axis)
            out << "untestable_faults,t_raw_final,fit_raw_r,"
                   "fit_raw_theta_max,";
        if (report.defect_stats_axis)
            out << "stat_yield,cluster_dl_ppm,fit_c_r,fit_c_theta_max,"
                   "fit_c_alpha,fit_c_rms,";
        out << "interruption\n";
    }
    for (const CellResult& c : report.cells) {
        out << c.index << "," << c.circuit << "," << c.rules << "," << c.seed
            << "," << c.atpg << ",";
        if (report.ndetect_axis) out << c.ndetect << ",";
        if (report.analysis_axis) out << (c.analysis ? "on" : "off") << ",";
        if (report.defect_stats_axis) out << c.defect_stats << ",";
        out << c.mapped_gates << ","
            << c.stuck_faults << "," << c.realistic_faults << ","
            << c.vector_count << "," << num(c.yield) << ","
            << num(c.t_curve.final()) << "," << num(c.theta_curve.final())
            << "," << num(c.gamma_curve.final()) << ","
            << num(c.theta_iddq_curve.final()) << "," << num(c.fit_r) << ","
            << num(c.fit_theta_max) << "," << num(residual_ppm(c)) << ",";
        if (report.ndetect_axis)
            out << c.ndetect_min << "," << num(c.ndetect_mean) << ","
                << num(c.worst_case_coverage) << ","
                << num(c.avg_case_coverage) << "," << num(dl_ppm(c)) << ",";
        if (report.analysis_axis)
            out << c.untestable_faults << "," << num(c.t_curve_raw.final())
                << "," << num(c.fit_raw_r) << ","
                << num(c.fit_raw_theta_max) << ",";
        if (report.defect_stats_axis)
            out << num(c.stat_yield) << "," << num(clustered_dl_ppm(c))
                << "," << num(c.fit_c_r) << "," << num(c.fit_c_theta_max)
                << "," << num(c.fit_c_alpha) << "," << num(c.fit_c_rms)
                << ",";
        out << c.interruption << "\n";
    }
    return out.str();
}

std::string stats_json(const CampaignStats& s) {
    std::ostringstream out;
    out << "{\n";
    out << "  \"cells_total\": " << s.cells_total << ",\n";
    out << "  \"cells_selected\": " << s.cells_selected << ",\n";
    out << "  \"cells_completed\": " << s.cells_completed << ",\n";
    out << "  \"cell_hits\": " << s.cell_hits << ",\n";
    out << "  \"cell_misses\": " << s.cell_misses << ",\n";
    out << "  \"tests_hits\": " << s.tests_hits << ",\n";
    out << "  \"tests_misses\": " << s.tests_misses << ",\n";
    out << "  \"sim_hits\": " << s.sim_hits << ",\n";
    out << "  \"sim_misses\": " << s.sim_misses << ",\n";
    out << "  \"faults_hits\": " << s.faults_hits << ",\n";
    out << "  \"faults_misses\": " << s.faults_misses << ",\n";
    out << "  \"analysis_hits\": " << s.analysis_hits << ",\n";
    out << "  \"analysis_misses\": " << s.analysis_misses << ",\n";
    out << "  \"store_corrupt\": " << s.store_corrupt << ",\n";
    out << "  \"stop\": \"" << support::stop_reason_name(s.stop) << "\"\n";
    out << "}\n";
    return out.str();
}

}  // namespace dlp::campaign
