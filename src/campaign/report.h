// Aggregated campaign reports: a JSON document with the full coverage
// curves per cell, a one-row-per-cell CSV, and a separate cache/run
// accounting document.
//
// The JSON/CSV reports contain only quantities that are deterministic in
// the spec (identity, workload facts, curves, fits) — never cache or
// timing accounting — so a warm re-run, a resumed run, and the merge of a
// sharded fan-out all produce byte-identical report content.  Cache
// accounting goes in stats_json() instead.
#pragma once

#include <string>

#include "campaign/runner.h"

namespace dlp::campaign {

/// Deterministic JSON report: campaign name + one object per completed
/// cell (identity, workload facts, final coverages, eq (11) fit with the
/// residual-DL floor in ppm, and the four full coverage curves).
std::string report_json(const CampaignReport& report);

/// Deterministic CSV, one row per cell:
/// index,circuit,rules,seed,atpg,mapped_gates,stuck_faults,
/// realistic_faults,vectors,yield,t_final,theta_final,gamma_final,
/// theta_iddq_final,fit_r,fit_theta_max,residual_ppm,interruption
/// Rows are in grid order, so sharded runs merge with a sort on column 1.
std::string report_csv(const CampaignReport& report,
                       bool header = true);

/// Cache and execution accounting (hits/misses per artifact kind,
/// corruption count, stop reason).  Deliberately separate from the
/// science reports; wall-clock timing is added by the CLI, not here.
std::string stats_json(const CampaignStats& stats);

}  // namespace dlp::campaign
