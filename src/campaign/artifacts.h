// Bit-exact serialization of the stage artifacts a campaign caches:
// the collapsed stuck-at fault list, the generated test set (vectors +
// T(k)), the switch-level simulation data (theta/Gamma curves + detection
// tables), and the fitted per-cell result.
//
// Formats are line-oriented text with doubles encoded as the hex of their
// IEEE-754 bit pattern, so a deserialized artifact is bit-identical to the
// one that was stored — the resume-from-cache guarantee ("a resumed
// campaign reproduces the uninterrupted report byte for byte") rests on
// this.  Every document carries a versioned magic line; parse_* throw
// std::runtime_error on any mismatch, which the campaign runner treats as
// a cache miss.
//
// n-detection cells (ndetect > 1) serialize as version 2 of the tests/cell
// formats, which append the detection-count tables and quality figures;
// analysis cells (untestability analysis on) serialize as version 3, which
// additionally appends the uncorrected coverage curve and the raw fit;
// clustered cells (a non-Poisson defect-statistics backend) serialize as
// cell version 4, which additionally appends an explicit analysis flag
// (v3 implied analysis-on; v4 carries any combination), the backend
// descriptor, the clustered yield and the joint clustered fit.  Classic
// cells keep emitting version 1 byte for byte, so caches warmed before any
// of the axes existed stay valid and classic artifacts stay byte-identical
// across the changes.  Parsers accept all versions.
#pragma once

#include <string>
#include <vector>

#include "flow/experiment.h"
#include "gatesim/faults.h"

namespace dlp::campaign {

/// One completed grid cell: identity, workload facts, coverage curves and
/// the eq (11) fit.  This is both the "fitted model" cache artifact and
/// one row of the aggregated campaign report.
struct CellResult {
    std::size_t index = 0;  ///< row-major grid index (not serialized)
    std::string circuit;
    std::string rules;
    std::string atpg;
    std::uint64_t seed = 1;

    std::size_t mapped_gates = 0;
    std::size_t stuck_faults = 0;
    std::size_t realistic_faults = 0;
    std::size_t transistors = 0;
    int vector_count = 0;
    int random_vectors = 0;
    double yield = 1.0;

    double fit_r = 1.0;
    double fit_theta_max = 1.0;
    double fit_rms = 0.0;

    // n-detection quality (Pomeranz & Reddy worst/average case over
    // testable faults; see model/ndetect.h).  Trivial at the default
    // target 1, and only serialized/reported for n-detect cells.
    int ndetect = 1;             ///< the cell's n-detection target
    int ndetect_min = 0;         ///< min detections over testable faults
    double ndetect_mean = 0.0;   ///< mean detections over testable faults
    double worst_case_coverage = 0.0;  ///< frac of faults at the target
    double avg_case_coverage = 0.0;    ///< mean min(count, n)/n

    // Static untestability analysis (src/analysis).  Only serialized and
    // reported for analysis cells (v3); classic cells leave the defaults.
    bool analysis = false;      ///< the analyze() stage ran for this cell
    std::size_t untestable_faults = 0;  ///< faults proven untestable
    double fit_raw_r = 0.0;             ///< eq (11) fit of the raw curve
    double fit_raw_theta_max = 0.0;

    // Defect-statistics backend (model/defect_stats_model.h).  Only
    // serialized for non-Poisson cells (v4); Poisson cells leave the
    // defaults and reports derive their clustered columns on the fly, so
    // a v1 cache hit equals a fresh Poisson cell byte for byte.
    std::string defect_stats = "poisson";  ///< canonical descriptor
    double stat_yield = 1.0;   ///< yield under the backend (== yield for
                               ///< Poisson)
    double fit_c_r = 0.0;      ///< joint clustered fit of eq (11)
    double fit_c_theta_max = 0.0;
    double fit_c_alpha = 0.0;  ///< recovered clustering shape
    double fit_c_rms = 0.0;    ///< RMS log-DL residual of the joint fit

    /// "" for a complete run, else "<stage>:<reason>" (e.g. a per-cell
    /// vector budget: "switch-sim:VectorBudget").
    std::string interruption;

    flow::CoverageCurve t_curve;  ///< corrected when analysis ran
    /// Uncorrected stuck-at coverage (detected / |universe|); empty unless
    /// the analysis ran.
    flow::CoverageCurve t_curve_raw;
    flow::CoverageCurve theta_curve;
    flow::CoverageCurve gamma_curve;
    flow::CoverageCurve theta_iddq_curve;
};

/// Bit-pattern hex encoding used for doubles ("3fe8000000000000"-style).
std::string double_hex(double v);
double parse_double_hex(const std::string& hex);

std::string serialize_faults(const std::vector<gatesim::StuckAtFault>& f);
std::vector<gatesim::StuckAtFault> parse_faults(const std::string& text);

std::string serialize_tests(const flow::ExperimentRunner::TestSet& t);
flow::ExperimentRunner::TestSet parse_tests(const std::string& text);

std::string serialize_simulation(
    const flow::ExperimentRunner::SimulationData& d);
flow::ExperimentRunner::SimulationData parse_simulation(
    const std::string& text);

std::string serialize_cell(const CellResult& c);
CellResult parse_cell(const std::string& text);

/// The analysis-stage artifact: collapsed universe + untestability marks +
/// work counters.  Proof objects are deliberately NOT serialized (they are
/// bulky and only the marks/stats feed the downstream stages); a parsed
/// artifact carries an empty proof list.
std::string serialize_analysis(const flow::ExperimentRunner::AnalysisData& a);
flow::ExperimentRunner::AnalysisData parse_analysis(const std::string& text);

}  // namespace dlp::campaign
