#include "campaign/runner.h"

#include <sstream>
#include <stdexcept>
#include <utility>

#include "analysis/untestable.h"
#include "extract/rules_parser.h"
#include "lint/checks.h"
#include "model/defect_stats_model.h"
#include "netlist/bench_parser.h"
#include "obs/telemetry.h"

namespace dlp::campaign {

namespace {

/// A stop that must abort the campaign (vs. a vector budget, which is a
/// deterministic part of the cell's configuration and commits normally).
bool is_campaign_stop(support::StopReason reason) {
    return reason == support::StopReason::Cancelled ||
           reason == support::StopReason::DeadlineExpired;
}

/// Canonical key texts.  Each embeds a format version so incompatible
/// pipeline changes can invalidate old caches by bumping it; doubles are
/// encoded by bit pattern so a key never aliases across distinct values.
struct CellKeys {
    std::string faults;    ///< collapsed fault universe
    std::string analysis;  ///< untestability marks (analysis cells only)
    std::string tests;     ///< + ATPG config, seed, vector budget
    std::string sim;       ///< + rule deck, yield scaling, weighting
    std::string cell;      ///< fitted-cell result (same inputs as sim)
};

CellKeys make_keys(const CampaignSpec& spec, const Cell& cell,
                   const std::string& bench_hash,
                   const std::string& rules_hash,
                   const atpg::TestGenOptions& atpg, bool analysis,
                   const std::string& defect_stats) {
    CellKeys k;
    {
        std::ostringstream o;
        o << "dlproj-key faults 1\n" << "bench " << bench_hash << "\n";
        k.faults = o.str();
    }
    {
        // Keyed by the circuit alone: the marks are a property of its
        // structure, so every analysis cell of a circuit shares one
        // artifact across rules/seeds/ATPG variants.
        std::ostringstream o;
        o << "dlproj-key analysis 1\n" << "bench " << bench_hash << "\n";
        k.analysis = o.str();
    }
    {
        std::ostringstream o;
        o << "dlproj-key tests 1\n"
          << "bench " << bench_hash << "\n"
          << "seed " << cell.seed << "\n"
          << "random_block " << atpg.random_block << "\n"
          << "max_random " << atpg.max_random << "\n"
          << "stale_blocks " << atpg.stale_blocks << "\n"
          << "backtrack_limit " << atpg.backtrack_limit << "\n"
          << "max_vectors " << spec.max_vectors << "\n";
        // The n-detection target (and the top-up mix, which only matters
        // beyond the first detection) enter the key only when they can
        // change the test set, so classic cells keep their v1 keys and
        // pre-existing warm caches stay hits.
        if (atpg.ndetect > 1)
            o << "ndetect " << atpg.ndetect << "\n"
              << "ndetect_mix " << atpg::ndetect_mix_name(atpg.ndetect_mix)
              << "\n";
        // Likewise for the untestability analysis: marks change the test
        // set (proven faults settle Redundant), so only analysis cells key
        // on it and classic cells keep hitting pre-existing caches.
        if (analysis) o << "analysis on\n";
        k.tests = o.str();
    }
    {
        std::ostringstream o;
        o << "dlproj-key sim 1\n"
          << "tests " << hex64(fnv1a64(k.tests)) << "\n"
          << "rules " << rules_hash << "\n"
          << "target_yield " << double_hex(spec.target_yield) << "\n"
          << "weighted " << (spec.weighted ? 1 : 0) << "\n";
        k.sim = o.str();
    }
    // The backend enters only the CELL key: it changes nothing upstream of
    // the fit stage, so faults/tests/sim artifacts are shared across the
    // whole defect_stats axis, and the poisson spelling adds no key
    // material at all — poisson cells keep hitting classic caches.  (A
    // deck's own cluster_* directives are already covered by rules_hash.)
    k.cell = "dlproj-key cell 1\n" + k.sim;
    if (defect_stats != "poisson")
        k.cell += "defect_stats " + defect_stats + "\n";
    return k;
}

CellResult make_cell_result(const Cell& cell, bool analysis,
                            const flow::ExperimentResult& r) {
    CellResult c;
    c.index = cell.index;
    c.circuit = cell.circuit;
    c.rules = cell.rules;
    c.atpg = cell.atpg;
    c.seed = cell.seed;
    c.mapped_gates = r.mapped_gates;
    c.stuck_faults = r.stuck_faults;
    c.realistic_faults = r.realistic_faults;
    c.transistors = r.transistors;
    c.vector_count = r.vector_count;
    c.random_vectors = r.random_vectors;
    c.yield = r.yield;
    c.fit_r = r.fit.r;
    c.fit_theta_max = r.fit.theta_max;
    c.fit_rms = r.fit.rms_error;
    c.ndetect = r.ndetect.target;
    c.ndetect_min = r.ndetect.min_detections;
    c.ndetect_mean = r.ndetect.mean_detections;
    c.worst_case_coverage = r.ndetect.worst_case_coverage;
    c.avg_case_coverage = r.ndetect.avg_case_coverage;
    c.analysis = analysis;
    // Only analysis cells carry the raw figures: ProposedFit defaults are
    // not zero, and copying them into an off cell would make a fresh cell
    // differ from a cache-parsed v1 cell.
    if (analysis) {
        c.untestable_faults = r.untestable_faults;
        c.fit_raw_r = r.fit_raw.r;
        c.fit_raw_theta_max = r.fit_raw.theta_max;
        c.t_curve_raw = r.t_curve_raw;
    }
    // stat_yield is bit-identical to yield for Poisson backends, so this
    // unconditional copy matches what parse_cell derives for a v1 hit.
    c.stat_yield = r.stat_yield;
    const std::string backend = r.defect_stats.describe();
    if (backend != "poisson") {
        c.defect_stats = backend;
        c.fit_c_r = r.fit_clustered.r;
        c.fit_c_theta_max = r.fit_clustered.theta_max;
        c.fit_c_alpha = r.fit_clustered.alpha;
        c.fit_c_rms = r.fit_clustered.rms_error;
    }
    if (r.interruption)
        c.interruption =
            r.interruption->stage + ":" +
            std::string(support::stop_reason_name(r.interruption->reason));
    c.t_curve = r.t_curve;
    c.theta_curve = r.theta_curve;
    c.gamma_curve = r.gamma_curve;
    c.theta_iddq_curve = r.theta_iddq_curve;
    return c;
}

}  // namespace

CampaignRunner::CampaignRunner(CampaignSpec spec, CampaignOptions options)
    : spec_(std::move(spec)), options_(std::move(options)) {}

void CampaignRunner::report_progress(std::string_view stage, std::size_t done,
                                     std::size_t total) {
    if (options_.progress) options_.progress(stage, done, total);
}

CampaignReport CampaignRunner::run() {
    DLP_OBS_SPAN(span, "campaign.run");
    CampaignReport rep;
    rep.name = spec_.name;
    rep.ndetect_axis = spec_.has_ndetect_axis();
    rep.analysis_axis = spec_.has_analysis_axis();
    rep.defect_stats_axis = spec_.has_defect_stats_axis();
    rep.stats.cells_total = spec_.cell_count();
    const std::vector<std::size_t> cells =
        shard_cells(rep.stats.cells_total, options_.shard);
    rep.stats.cells_selected = cells.size();
    ArtifactStore store(options_.use_cache ? options_.cache_dir
                                           : std::string());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        report_progress("cell", i, cells.size());
        if (const auto stop = options_.budget.check();
            stop != support::StopReason::None) {
            rep.stats.stop = stop;
            break;
        }
        if (!run_cell(cells[i], rep, store)) break;
        ++rep.stats.cells_completed;
        report_progress("campaign", i + 1, cells.size());
    }
    rep.stats.store_corrupt = store.corrupt();
    if (rep.stats.stop != support::StopReason::None)
        DLP_OBS_SPAN_NOTE(
            span, "campaign stopped: " + std::string(support::stop_reason_name(
                                             rep.stats.stop)));
    return rep;
}

bool CampaignRunner::run_cell(std::size_t index, CampaignReport& rep,
                              ArtifactStore& store) {
    DLP_OBS_SPAN(span, "campaign.cell");
    DLP_OBS_COUNTER(c_hit, "campaign.cell.cache_hit");
    DLP_OBS_COUNTER(c_miss, "campaign.cell.cache_miss");
    const Cell cell = cell_at(spec_, index);
    const auto cell_id = [&] {
        std::string id = "cell #" + std::to_string(index) + " (" +
                         cell.circuit + ", " + cell.rules + ", seed " +
                         std::to_string(cell.seed) + ", atpg " + cell.atpg;
        if (cell.ndetect != 1)
            id += ", ndetect " + std::to_string(cell.ndetect);
        if (cell.analysis) id += ", analysis on";
        if (cell.defect_stats != "poisson")
            id += ", defect_stats " + cell.defect_stats;
        return id + ")";
    };

    // Resolve the grid names to concrete inputs and canonicalize them by
    // content, so two names for the same circuit (a builder and a .bench
    // dump of it) address the same artifacts.
    netlist::Circuit circuit("unresolved");
    extract::DefectStatistics defects;
    try {
        circuit = resolve_circuit(cell.circuit);
        defects = resolve_rules(cell.rules);
    } catch (const std::exception& e) {
        throw std::runtime_error("campaign " + cell_id() + ": " + e.what());
    }
    const AtpgVariant& variant = atpg_variant(spec_, cell.atpg);
    atpg::TestGenOptions atpg_opts = variant.options;
    atpg_opts.seed = cell.seed;
    atpg_opts.ndetect = cell.ndetect;
    // The DLPROJ_ANALYSIS kill switch applies BEFORE keying: with the
    // stage disabled the cell computes — and must cache — as a classic
    // cell, not poison the analysis-keyed artifacts with unanalyzed data.
    const bool analysis_on =
        cell.analysis && analysis::analysis_enabled_from_env();
    model::DefectStatsModel backend;
    try {
        backend = model::parse_defect_stats(cell.defect_stats);
    } catch (const std::exception& e) {
        throw std::runtime_error("campaign " + cell_id() + ": " + e.what());
    }
    const std::string bench_hash = hex64(fnv1a64(netlist::to_bench(circuit)));
    const std::string rules_hash = hex64(fnv1a64(extract::to_rules(defects)));
    const CellKeys keys =
        make_keys(spec_, cell, bench_hash, rules_hash, atpg_opts, analysis_on,
                  backend.describe());

    // Whole-cell hit: skip everything.
    if (auto hit = store.get("cell", keys.cell)) {
        try {
            CellResult r = parse_cell(*hit);
            r.index = index;
            rep.cells.push_back(std::move(r));
            ++rep.stats.cell_hits;
            DLP_OBS_ADD(c_hit, 1);
            return true;
        } catch (const std::exception&) {
            // Format drift: fall through and recompute.
        }
    }
    // A disabled store never hits and should not report misses either:
    // "no cache configured" must stay distinguishable from "cold cache".
    if (store.enabled()) {
        ++rep.stats.cell_misses;
        DLP_OBS_ADD(c_miss, 1);
    }

    flow::ExperimentOptions opt;
    opt.target_yield = spec_.target_yield;
    // Engine choice deliberately stays OUT of make_keys(): every
    // registered engine is bit-identical, so artifacts written under one
    // engine must be hit by every other.
    opt.engine = options_.engine.empty() ? spec_.engine : options_.engine;
    opt.weighted = spec_.weighted;
    opt.defects = defects;
    opt.atpg = atpg_opts;
    opt.parallel = options_.parallel;
    opt.budget = options_.budget;
    opt.budget.max_vectors = spec_.max_vectors;
    opt.lint_enabled = spec_.lint;
    opt.analysis = analysis_on;
    opt.defect_stats = backend;
    flow::ExperimentRunner runner(std::move(circuit), std::move(opt));
    runner.set_progress(options_.progress);

    // Seed the runner with any cached stage artifacts.  The analysis
    // artifact goes in first: inject_analysis drops downstream artifacts,
    // so injecting it after the test set would discard the test set.
    bool analysis_injected = false;
    if (analysis_on) {
        if (auto hit = store.get("analysis", keys.analysis)) {
            try {
                runner.inject_analysis(parse_analysis(*hit));
                analysis_injected = true;
                ++rep.stats.analysis_hits;
            } catch (const std::exception&) {
            }
        }
        if (!analysis_injected && store.enabled())
            ++rep.stats.analysis_misses;
    }
    bool tests_injected = false;
    if (auto hit = store.get("tests", keys.tests)) {
        try {
            runner.inject_tests(parse_tests(*hit));
            tests_injected = true;
            ++rep.stats.tests_hits;
        } catch (const std::exception&) {
        }
    }
    if (!tests_injected) {
        if (store.enabled()) ++rep.stats.tests_misses;
        bool faults_injected = false;
        if (auto hit = store.get("faults", keys.faults)) {
            try {
                runner.inject_collapsed_faults(parse_faults(*hit));
                faults_injected = true;
                ++rep.stats.faults_hits;
            } catch (const std::exception&) {
            }
        }
        if (!faults_injected && store.enabled()) ++rep.stats.faults_misses;
    }
    bool sim_injected = false;
    if (tests_injected) {
        if (auto hit = store.get("sim", keys.sim)) {
            try {
                runner.inject_simulation(parse_simulation(*hit));
                sim_injected = true;
                ++rep.stats.sim_hits;
            } catch (const std::exception&) {
            }
        }
    }
    if (!sim_injected && store.enabled()) ++rep.stats.sim_misses;

    try {
        // Stage by stage, committing each freshly computed artifact as
        // soon as its stage completes: an interrupted campaign resumes
        // from the last committed artifact.
        //
        // The analysis stage runs even when the test set was injected:
        // fit() reads its counters for the cell result, and recomputing
        // (or re-hitting) it keeps a partially warm cell byte-identical
        // to a cold one.
        if (analysis_on) {
            const flow::ExperimentRunner::AnalysisData& a = runner.analyze();
            if (is_campaign_stop(a.stop)) {
                rep.stats.stop = a.stop;
                return false;
            }
            if (!analysis_injected)
                store.put("analysis", keys.analysis, serialize_analysis(a));
        }
        const flow::ExperimentRunner::TestSet& t = runner.generate_tests();
        if (is_campaign_stop(t.tests.stop)) {
            rep.stats.stop = t.tests.stop;
            return false;
        }
        if (!tests_injected) {
            store.put("faults", keys.faults, serialize_faults(t.stuck));
            store.put("tests", keys.tests, serialize_tests(t));
        }
        const flow::ExperimentRunner::SimulationData& d = runner.simulate();
        if (is_campaign_stop(d.stop)) {
            rep.stats.stop = d.stop;
            return false;
        }
        if (!sim_injected)
            store.put("sim", keys.sim, serialize_simulation(d));
        const flow::ExperimentResult& res = runner.fit();
        if (res.interruption && is_campaign_stop(res.interruption->reason)) {
            rep.stats.stop = res.interruption->reason;
            return false;
        }
        CellResult r = make_cell_result(cell, analysis_on, res);
        store.put("cell", keys.cell, serialize_cell(r));
        rep.cells.push_back(std::move(r));
        return true;
    } catch (const lint::LintError& e) {
        throw std::runtime_error("campaign " + cell_id() +
                                 ": static analysis rejected the inputs:\n" +
                                 lint::render_text(e.report().diagnostics));
    }
}

CampaignReport run_campaign(const CampaignSpec& spec,
                            const CampaignOptions& options) {
    CampaignRunner runner(spec, options);
    return runner.run();
}

}  // namespace dlp::campaign
