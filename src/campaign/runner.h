// Batched experiment campaigns: runs a declarative grid of experiments
// (spec.h) on top of the staged flow::ExperimentRunner, backed by the
// content-addressed artifact cache (store.h).
//
// Per cell, the runner looks up the fitted-cell artifact first (a hit
// skips the cell entirely), then seeds the experiment runner with any
// cached stage artifacts (collapsed fault list, test set, simulation
// data) before running the remaining stages.  Every freshly computed
// stage artifact is committed to the store as soon as its stage
// completes, so a cancelled campaign resumes from the last committed
// artifact and — because every stage is deterministic in its inputs —
// reproduces the uninterrupted report byte for byte.
//
// Cells execute sequentially in row-major grid order (shard-filtered);
// each cell reuses the shared thread pool internally via
// ExperimentOptions::parallel.  Telemetry: campaign.run / campaign.cell
// spans, campaign.cell.cache_hit / cache_miss counters (plus the
// campaign.store.* counters from store.h).
#pragma once

#include "campaign/artifacts.h"
#include "campaign/spec.h"
#include "campaign/store.h"
#include "flow/experiment.h"

namespace dlp::campaign {

struct CampaignOptions {
    /// Artifact-cache root; "" disables caching (DLPROJ_CACHE is applied
    /// by the CLI, not here, so library users stay explicit).
    std::string cache_dir;
    bool use_cache = true;  ///< false: ignore cache_dir entirely
    /// Shard `index/count` of the grid this run executes (default: all).
    Shard shard;
    /// Campaign-level bounds: the cancel token / deadline are checked at
    /// cell boundaries and forwarded into every cell's stages.  A stopped
    /// campaign commits nothing for the interrupted cell.
    support::RunBudget budget;
    /// Fault-sim engine override (--engine): non-empty wins over the
    /// spec's `engine =` key; both resolve through sim::resolve_engine.
    /// Never part of artifact keys — engines are bit-identical.
    std::string engine;
    /// Worker count within each cell (both fault simulators + ATPG).
    parallel::ParallelOptions parallel;
    /// Forwarded as each cell's ExperimentRunner progress observer; the
    /// campaign additionally reports ("cell", i, selected) before and
    /// ("campaign", i+1, selected) after each cell.
    flow::ProgressFn progress;
};

struct CampaignStats {
    std::size_t cells_total = 0;     ///< full grid size
    std::size_t cells_selected = 0;  ///< after shard filtering
    std::size_t cells_completed = 0;
    std::size_t cell_hits = 0;   ///< whole-cell artifact hits
    std::size_t cell_misses = 0;
    std::size_t tests_hits = 0;  ///< test-set artifact hits (cell misses)
    std::size_t tests_misses = 0;
    std::size_t sim_hits = 0;
    std::size_t sim_misses = 0;
    std::size_t faults_hits = 0;
    std::size_t faults_misses = 0;
    std::size_t analysis_hits = 0;  ///< untestability-analysis artifacts
    std::size_t analysis_misses = 0;
    std::size_t store_corrupt = 0;  ///< objects rejected by hash check
    /// Why the campaign stopped early (None = ran to completion).
    support::StopReason stop = support::StopReason::None;
};

struct CampaignReport {
    std::string name;
    /// Completed cells in grid order (shard-selected).  Deterministic in
    /// the spec: cache hits, resumes and sharding never change content.
    std::vector<CellResult> cells;
    /// True when the spec sweeps an n-detection axis (any target != 1).
    /// Report emitters add the per-n quality columns only then, so
    /// classic campaigns keep their exact report bytes.
    bool ndetect_axis = false;
    /// True when the spec turns the untestability analysis on anywhere;
    /// report emitters add the corrected-vs-raw columns only then.
    bool analysis_axis = false;
    /// True when the spec sweeps a non-Poisson defect-statistics backend
    /// anywhere; report emitters add the clustered columns only then.
    bool defect_stats_axis = false;
    CampaignStats stats;
};

class CampaignRunner {
public:
    explicit CampaignRunner(CampaignSpec spec, CampaignOptions options = {});

    /// Executes this run's shard of the grid.  Throws std::runtime_error
    /// (with the cell identity prepended) when a cell's inputs fail the
    /// static-analysis gate or cannot be resolved.
    CampaignReport run();

private:
    /// False when a campaign-level budget stop interrupted the cell (the
    /// stop reason is recorded in `report.stats.stop`; nothing committed).
    bool run_cell(std::size_t index, CampaignReport& report,
                  ArtifactStore& store);
    void report_progress(std::string_view stage, std::size_t done,
                         std::size_t total);

    CampaignSpec spec_;
    CampaignOptions options_;
};

/// One-call wrapper.
CampaignReport run_campaign(const CampaignSpec& spec,
                            const CampaignOptions& options = {});

}  // namespace dlp::campaign
