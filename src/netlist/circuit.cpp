#include "netlist/circuit.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace dlp::netlist {

const char* gate_type_name(GateType type) {
    switch (type) {
        case GateType::Input: return "INPUT";
        case GateType::Buf: return "BUF";
        case GateType::Not: return "NOT";
        case GateType::And: return "AND";
        case GateType::Nand: return "NAND";
        case GateType::Or: return "OR";
        case GateType::Nor: return "NOR";
        case GateType::Xor: return "XOR";
        case GateType::Xnor: return "XNOR";
    }
    return "?";
}

std::uint64_t eval_gate(GateType type, std::span<const std::uint64_t> fanin) {
    switch (type) {
        case GateType::Input:
            throw std::invalid_argument("cannot evaluate an Input gate");
        case GateType::Buf:
            return fanin[0];
        case GateType::Not:
            return ~fanin[0];
        case GateType::And:
        case GateType::Nand: {
            std::uint64_t v = ~0ULL;
            for (std::uint64_t f : fanin) v &= f;
            return type == GateType::And ? v : ~v;
        }
        case GateType::Or:
        case GateType::Nor: {
            std::uint64_t v = 0ULL;
            for (std::uint64_t f : fanin) v |= f;
            return type == GateType::Or ? v : ~v;
        }
        case GateType::Xor:
        case GateType::Xnor: {
            std::uint64_t v = 0ULL;
            for (std::uint64_t f : fanin) v ^= f;
            return type == GateType::Xor ? v : ~v;
        }
    }
    throw std::invalid_argument("unknown gate type");
}

namespace {

void check_arity(GateType type, std::size_t arity) {
    switch (type) {
        case GateType::Input:
            if (arity != 0)
                throw std::invalid_argument("Input gates take no fanin");
            return;
        case GateType::Buf:
        case GateType::Not:
            if (arity != 1)
                throw std::invalid_argument("Buf/Not take exactly one fanin");
            return;
        default:
            if (arity < 2)
                throw std::invalid_argument(
                    "multi-input gates need >= 2 fanins");
    }
}

}  // namespace

NetId Circuit::add_input(std::string name) {
    const NetId id = static_cast<NetId>(gates_.size());
    gates_.push_back(Gate{GateType::Input, std::move(name), {}});
    inputs_.push_back(id);
    return id;
}

NetId Circuit::add_gate(GateType type, std::string name,
                        std::vector<NetId> fanin) {
    if (type == GateType::Input)
        throw std::invalid_argument("use add_input for primary inputs");
    check_arity(type, fanin.size());
    for (NetId f : fanin)
        if (f >= gates_.size())
            throw std::invalid_argument("fanin net does not exist: " +
                                        std::to_string(f));
    const NetId id = static_cast<NetId>(gates_.size());
    gates_.push_back(Gate{type, std::move(name), std::move(fanin)});
    return id;
}

void Circuit::mark_output(NetId net) {
    if (net >= gates_.size())
        throw std::invalid_argument("output net does not exist");
    if (!is_output(net)) outputs_.push_back(net);
}

bool Circuit::is_output(NetId net) const {
    return std::find(outputs_.begin(), outputs_.end(), net) != outputs_.end();
}

NetId Circuit::find(const std::string& name) const {
    for (NetId i = 0; i < gates_.size(); ++i)
        if (gates_[i].name == name) return i;
    return kNoNet;
}

std::vector<std::vector<NetId>> Circuit::fanouts() const {
    std::vector<std::vector<NetId>> out(gates_.size());
    for (NetId g = 0; g < gates_.size(); ++g)
        for (NetId f : gates_[g].fanin) out[f].push_back(g);
    return out;
}

std::vector<int> Circuit::levels() const {
    std::vector<int> level(gates_.size(), 0);
    for (NetId g = 0; g < gates_.size(); ++g) {
        int lv = 0;
        for (NetId f : gates_[g].fanin) lv = std::max(lv, level[f] + 1);
        level[g] = lv;
    }
    return level;
}

int Circuit::depth() const {
    const auto lv = levels();
    return lv.empty() ? 0 : *std::max_element(lv.begin(), lv.end());
}

std::vector<std::string> Circuit::validate() const {
    std::vector<std::string> problems;
    std::unordered_set<std::string> names;
    for (const Gate& g : gates_)
        if (!names.insert(g.name).second)
            problems.push_back("duplicate net name: " + g.name);
    const auto fo = fanouts();
    for (NetId g = 0; g < gates_.size(); ++g) {
        if (fo[g].empty() && !is_output(g))
            problems.push_back("dangling net (no fanout, not a PO): " +
                               gates_[g].name);
        try {
            check_arity(gates_[g].type, gates_[g].fanin.size());
        } catch (const std::invalid_argument& e) {
            problems.push_back(gates_[g].name + ": " + e.what());
        }
    }
    if (outputs_.empty()) problems.push_back("circuit has no primary outputs");
    return problems;
}

std::vector<std::size_t> Circuit::type_histogram() const {
    std::vector<std::size_t> hist(
        static_cast<std::size_t>(GateType::Xnor) + 1, 0);
    for (const Gate& g : gates_) ++hist[static_cast<std::size_t>(g.type)];
    return hist;
}

}  // namespace dlp::netlist
