#include "netlist/bench_parser.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace dlp::netlist {

namespace {

struct RawGate {
    std::string out;
    std::string type;
    std::vector<std::string> fanin;
    int line = 0;
};

std::string trim(const std::string& s) {
    size_t a = 0;
    size_t b = s.size();
    while (a < b && std::isspace(static_cast<unsigned char>(s[a]))) ++a;
    while (b > a && std::isspace(static_cast<unsigned char>(s[b - 1]))) --b;
    return s.substr(a, b - a);
}

std::string upper(std::string s) {
    for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    return s;
}

[[noreturn]] void fail(int line, const std::string& what) {
    throw std::runtime_error("bench:" + std::to_string(line) + ": " + what);
}

GateType type_from_string(const std::string& t, int line) {
    const std::string u = upper(t);
    if (u == "BUF" || u == "BUFF") return GateType::Buf;
    if (u == "NOT" || u == "INV") return GateType::Not;
    if (u == "AND") return GateType::And;
    if (u == "NAND") return GateType::Nand;
    if (u == "OR") return GateType::Or;
    if (u == "NOR") return GateType::Nor;
    if (u == "XOR") return GateType::Xor;
    if (u == "XNOR") return GateType::Xnor;
    fail(line, "unknown gate type '" + t + "'");
}

}  // namespace

Circuit parse_bench(const std::string& text, std::string circuit_name) {
    struct Decl {
        std::string name;
        int line;
    };
    std::vector<Decl> input_names;
    std::vector<Decl> output_names;
    std::vector<RawGate> raw;

    std::istringstream in(text);
    std::string line_text;
    int line_no = 0;
    while (std::getline(in, line_text)) {
        ++line_no;
        const size_t hash = line_text.find('#');
        if (hash != std::string::npos) line_text.erase(hash);
        const std::string line = trim(line_text);
        if (line.empty()) continue;

        const size_t eq = line.find('=');
        if (eq == std::string::npos) {
            // INPUT(x) / OUTPUT(x)
            const size_t lp = line.find('(');
            const size_t rp = line.rfind(')');
            if (lp == std::string::npos || rp == std::string::npos || rp < lp)
                fail(line_no, "expected INPUT(...) or OUTPUT(...)");
            const std::string kw = upper(trim(line.substr(0, lp)));
            const std::string arg = trim(line.substr(lp + 1, rp - lp - 1));
            if (arg.empty()) fail(line_no, "empty net name");
            if (kw == "INPUT")
                input_names.push_back({arg, line_no});
            else if (kw == "OUTPUT")
                output_names.push_back({arg, line_no});
            else
                fail(line_no, "unknown directive '" + kw + "'");
            continue;
        }

        RawGate g;
        g.line = line_no;
        g.out = trim(line.substr(0, eq));
        const std::string rhs = trim(line.substr(eq + 1));
        const size_t lp = rhs.find('(');
        const size_t rp = rhs.rfind(')');
        if (g.out.empty() || lp == std::string::npos ||
            rp == std::string::npos || rp < lp)
            fail(line_no, "expected '<net> = TYPE(a, b, ...)'");
        g.type = trim(rhs.substr(0, lp));
        std::string args = rhs.substr(lp + 1, rp - lp - 1);
        std::string token;
        std::istringstream as(args);
        while (std::getline(as, token, ',')) {
            token = trim(token);
            if (token.empty()) fail(line_no, "empty fanin name");
            g.fanin.push_back(token);
        }
        if (g.fanin.empty()) fail(line_no, "gate with no fanin");
        raw.push_back(std::move(g));
    }

    // Duplicate drivers are rejected up front so the diagnostic carries the
    // offending line even when the duplicates also sit on a cycle.
    std::unordered_map<std::string, int> driver_line;
    for (const RawGate& g : raw) {
        const auto [it, inserted] = driver_line.emplace(g.out, g.line);
        if (!inserted)
            fail(g.line, "net '" + g.out + "' driven twice (first driver at "
                         "line " + std::to_string(it->second) + ")");
    }

    // Topological emission (forward references are legal in .bench).
    Circuit circuit(std::move(circuit_name));
    std::unordered_map<std::string, NetId> net_of;
    for (const auto& [name, decl_line] : input_names) {
        if (net_of.count(name)) fail(decl_line, "duplicate INPUT " + name);
        if (const auto it = driver_line.find(name); it != driver_line.end())
            fail(it->second, "net '" + name + "' driven twice (INPUT at "
                             "line " + std::to_string(decl_line) + ")");
        net_of[name] = circuit.add_input(name);
    }

    std::vector<bool> emitted(raw.size(), false);
    size_t remaining = raw.size();
    while (remaining > 0) {
        bool progress = false;
        for (size_t i = 0; i < raw.size(); ++i) {
            if (emitted[i]) continue;
            const RawGate& g = raw[i];
            bool ready = true;
            for (const std::string& f : g.fanin)
                if (!net_of.count(f)) {
                    ready = false;
                    break;
                }
            if (!ready) continue;
            std::vector<NetId> fanin;
            fanin.reserve(g.fanin.size());
            for (const std::string& f : g.fanin) fanin.push_back(net_of[f]);
            // Circuit::add_gate validates arity etc. with invalid_argument;
            // surface those as line-numbered parse diagnostics.
            try {
                net_of[g.out] =
                    circuit.add_gate(type_from_string(g.type, g.line), g.out,
                                     std::move(fanin));
            } catch (const std::invalid_argument& e) {
                fail(g.line, e.what());
            }
            emitted[i] = true;
            --remaining;
            progress = true;
        }
        if (!progress) {
            // Distinguish the two stall causes: a fanin no line defines is
            // an undefined net; if every fanin has a driver, the unemitted
            // gates form a combinational cycle.
            for (size_t i = 0; i < raw.size(); ++i) {
                if (emitted[i]) continue;
                for (const std::string& f : raw[i].fanin)
                    if (!net_of.count(f) && !driver_line.count(f))
                        fail(raw[i].line, "undefined net '" + f +
                                          "' in fanin of '" + raw[i].out +
                                          "'");
            }
            for (size_t i = 0; i < raw.size(); ++i)
                if (!emitted[i])
                    fail(raw[i].line, "combinational cycle involving '" +
                                      raw[i].out + "'");
        }
    }

    std::unordered_map<std::string, int> output_line;
    std::unordered_map<std::string, int> input_line;
    for (const auto& [name, decl_line] : input_names) input_line[name] = decl_line;
    for (const auto& [name, decl_line] : output_names) {
        const auto [prev, inserted] = output_line.emplace(name, decl_line);
        if (!inserted)
            fail(decl_line, "duplicate OUTPUT " + name + " (first declared "
                            "at line " + std::to_string(prev->second) + ")");
        if (const auto in_it = input_line.find(name); in_it != input_line.end())
            fail(decl_line, "net '" + name + "' declared both INPUT (line " +
                            std::to_string(in_it->second) + ") and OUTPUT");
        auto it = net_of.find(name);
        if (it == net_of.end())
            fail(decl_line, "OUTPUT(" + name + ") never driven");
        circuit.mark_output(it->second);
    }
    return circuit;
}

Circuit load_bench_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot open " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string name = path;
    const size_t slash = name.find_last_of('/');
    if (slash != std::string::npos) name.erase(0, slash + 1);
    const size_t dot = name.find_last_of('.');
    if (dot != std::string::npos) name.erase(dot);
    return parse_bench(buf.str(), name);
}

std::string to_bench(const Circuit& circuit) {
    std::ostringstream out;
    out << "# " << circuit.name() << "\n";
    for (NetId id : circuit.inputs())
        out << "INPUT(" << circuit.gate(id).name << ")\n";
    for (NetId id : circuit.outputs())
        out << "OUTPUT(" << circuit.gate(id).name << ")\n";
    for (const Gate& g : circuit.gates()) {
        if (g.type == GateType::Input) continue;
        out << g.name << " = " << gate_type_name(g.type) << "(";
        for (size_t i = 0; i < g.fanin.size(); ++i) {
            if (i) out << ", ";
            out << circuit.gate(g.fanin[i]).name;
        }
        out << ")\n";
    }
    return out.str();
}

void write_bench(const Circuit& circuit, const std::string& path) {
    std::ofstream f(path);
    if (!f) throw std::runtime_error("cannot open " + path);
    f << to_bench(circuit);
    if (!f) throw std::runtime_error("write failed: " + path);
}

}  // namespace dlp::netlist
