#include "netlist/bench_parser.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace dlp::netlist {

namespace {

struct RawGate {
    std::string out;
    std::string type;
    std::vector<std::string> fanin;
    int line = 0;
};

std::string trim(const std::string& s) {
    size_t a = 0;
    size_t b = s.size();
    while (a < b && std::isspace(static_cast<unsigned char>(s[a]))) ++a;
    while (b > a && std::isspace(static_cast<unsigned char>(s[b - 1]))) --b;
    return s.substr(a, b - a);
}

std::string upper(std::string s) {
    for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    return s;
}

[[noreturn]] void fail(int line, const std::string& what) {
    throw std::runtime_error("bench:" + std::to_string(line) + ": " + what);
}

GateType type_from_string(const std::string& t, int line) {
    const std::string u = upper(t);
    if (u == "BUF" || u == "BUFF") return GateType::Buf;
    if (u == "NOT" || u == "INV") return GateType::Not;
    if (u == "AND") return GateType::And;
    if (u == "NAND") return GateType::Nand;
    if (u == "OR") return GateType::Or;
    if (u == "NOR") return GateType::Nor;
    if (u == "XOR") return GateType::Xor;
    if (u == "XNOR") return GateType::Xnor;
    fail(line, "unknown gate type '" + t + "'");
}

}  // namespace

Circuit parse_bench(const std::string& text, std::string circuit_name) {
    std::vector<std::string> input_names;
    std::vector<std::string> output_names;
    std::vector<RawGate> raw;

    std::istringstream in(text);
    std::string line_text;
    int line_no = 0;
    while (std::getline(in, line_text)) {
        ++line_no;
        const size_t hash = line_text.find('#');
        if (hash != std::string::npos) line_text.erase(hash);
        const std::string line = trim(line_text);
        if (line.empty()) continue;

        const size_t eq = line.find('=');
        if (eq == std::string::npos) {
            // INPUT(x) / OUTPUT(x)
            const size_t lp = line.find('(');
            const size_t rp = line.rfind(')');
            if (lp == std::string::npos || rp == std::string::npos || rp < lp)
                fail(line_no, "expected INPUT(...) or OUTPUT(...)");
            const std::string kw = upper(trim(line.substr(0, lp)));
            const std::string arg = trim(line.substr(lp + 1, rp - lp - 1));
            if (arg.empty()) fail(line_no, "empty net name");
            if (kw == "INPUT")
                input_names.push_back(arg);
            else if (kw == "OUTPUT")
                output_names.push_back(arg);
            else
                fail(line_no, "unknown directive '" + kw + "'");
            continue;
        }

        RawGate g;
        g.line = line_no;
        g.out = trim(line.substr(0, eq));
        const std::string rhs = trim(line.substr(eq + 1));
        const size_t lp = rhs.find('(');
        const size_t rp = rhs.rfind(')');
        if (g.out.empty() || lp == std::string::npos ||
            rp == std::string::npos || rp < lp)
            fail(line_no, "expected '<net> = TYPE(a, b, ...)'");
        g.type = trim(rhs.substr(0, lp));
        std::string args = rhs.substr(lp + 1, rp - lp - 1);
        std::string token;
        std::istringstream as(args);
        while (std::getline(as, token, ',')) {
            token = trim(token);
            if (token.empty()) fail(line_no, "empty fanin name");
            g.fanin.push_back(token);
        }
        if (g.fanin.empty()) fail(line_no, "gate with no fanin");
        raw.push_back(std::move(g));
    }

    // Topological emission (forward references are legal in .bench).
    Circuit circuit(std::move(circuit_name));
    std::unordered_map<std::string, NetId> net_of;
    for (const std::string& name : input_names) {
        if (net_of.count(name)) fail(0, "duplicate INPUT " + name);
        net_of[name] = circuit.add_input(name);
    }

    std::vector<bool> emitted(raw.size(), false);
    size_t remaining = raw.size();
    while (remaining > 0) {
        bool progress = false;
        for (size_t i = 0; i < raw.size(); ++i) {
            if (emitted[i]) continue;
            const RawGate& g = raw[i];
            bool ready = true;
            for (const std::string& f : g.fanin)
                if (!net_of.count(f)) {
                    ready = false;
                    break;
                }
            if (!ready) continue;
            std::vector<NetId> fanin;
            fanin.reserve(g.fanin.size());
            for (const std::string& f : g.fanin) fanin.push_back(net_of[f]);
            if (net_of.count(g.out))
                fail(g.line, "net '" + g.out + "' driven twice");
            net_of[g.out] =
                circuit.add_gate(type_from_string(g.type, g.line), g.out,
                                 std::move(fanin));
            emitted[i] = true;
            --remaining;
            progress = true;
        }
        if (!progress) {
            for (size_t i = 0; i < raw.size(); ++i)
                if (!emitted[i])
                    fail(raw[i].line,
                         "unresolvable fanin (combinational cycle or missing "
                         "net) for '" + raw[i].out + "'");
        }
    }

    for (const std::string& name : output_names) {
        auto it = net_of.find(name);
        if (it == net_of.end())
            throw std::runtime_error("bench: OUTPUT(" + name +
                                     ") never driven");
        circuit.mark_output(it->second);
    }
    return circuit;
}

Circuit load_bench_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot open " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string name = path;
    const size_t slash = name.find_last_of('/');
    if (slash != std::string::npos) name.erase(0, slash + 1);
    const size_t dot = name.find_last_of('.');
    if (dot != std::string::npos) name.erase(dot);
    return parse_bench(buf.str(), name);
}

std::string to_bench(const Circuit& circuit) {
    std::ostringstream out;
    out << "# " << circuit.name() << "\n";
    for (NetId id : circuit.inputs())
        out << "INPUT(" << circuit.gate(id).name << ")\n";
    for (NetId id : circuit.outputs())
        out << "OUTPUT(" << circuit.gate(id).name << ")\n";
    for (const Gate& g : circuit.gates()) {
        if (g.type == GateType::Input) continue;
        out << g.name << " = " << gate_type_name(g.type) << "(";
        for (size_t i = 0; i < g.fanin.size(); ++i) {
            if (i) out << ", ";
            out << circuit.gate(g.fanin[i]).name;
        }
        out << ")\n";
    }
    return out.str();
}

}  // namespace dlp::netlist
