// Programmatic benchmark circuits.
//
// * c17: the exact six-NAND ISCAS-85 benchmark.
// * c432: a functional gate-level reconstruction of the ISCAS-85 27-channel
//   interrupt controller (36 inputs, 7 outputs) after the module-level
//   description of Hansen, Yalcin & Hayes, "Unveiling the ISCAS-85
//   Benchmarks".  The original netlist file is not redistributable here; the
//   reconstruction preserves the I/O profile, size class (~200 gates) and
//   priority-encoder structure the paper's experiment depends on.
// * parameterized families (adders, parity trees, mux trees, decoders,
//   random circuits) used by tests, examples and ablation benches.
#pragma once

#include <cstdint>

#include "netlist/circuit.h"

namespace dlp::netlist {

/// The exact ISCAS-85 c17 benchmark (5 inputs, 2 outputs, 6 NAND2).
Circuit build_c17();

/// Functional reconstruction of ISCAS-85 c432 (see file comment).
/// Inputs: E0..E8 (channel enables), A0..A8, B0..B8, C0..C8 (three 9-bit
/// request buses, priority A > B > C).  Outputs: PA, PB, PC (bus grants) and
/// CHAN3..CHAN0 (binary index of the highest-priority granted channel).
Circuit build_c432();

/// N-bit ripple-carry adder: inputs A0.., B0.., CIN; outputs S0.., COUT.
Circuit build_ripple_adder(int bits);

/// N-input XOR parity tree: inputs D0..; output PAR.
Circuit build_parity_tree(int inputs);

/// 2^sel-to-1 multiplexer tree: inputs D*, S*; output Y.
Circuit build_mux_tree(int select_bits);

/// N-to-2^N decoder with enable: inputs A*, EN; outputs Y0..Y(2^N-1).
Circuit build_decoder(int address_bits);

/// Pseudo-random levelized combinational circuit (deterministic in seed).
/// Gate types are drawn from {NAND, NOR, AND, OR, XOR, NOT}; every net is
/// kept observable (dangling nets become primary outputs).
Circuit build_random_circuit(int inputs, int gates, std::uint64_t seed);

/// c880-class workload: an N-bit ALU.  Inputs A*, B*, CIN and a 2-bit
/// opcode OP1 OP0 selecting {ADD, AND, OR, XOR}; outputs R0..R(N-1), COUT
/// (ripple carry of the ADD path) and Z (result == 0).
Circuit build_alu(int bits);

/// c499-class workload: a Hamming single-error corrector.  Inputs: data
/// D0..D(2^p-p-1 capped at `data_bits`) plus p parity bits P*; outputs the
/// corrected data bits C*.  XOR-tree heavy, like the real c499.
Circuit build_hamming_corrector(int data_bits);

}  // namespace dlp::netlist
