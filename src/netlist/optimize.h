// Netlist cleanup passes, run between synthesis-style construction and
// techmap: constant folding, common-subexpression sharing, buffer
// elision and dead-gate removal.  Functionally equivalence-preserving on
// the primary outputs.
#pragma once

#include "netlist/circuit.h"

namespace dlp::netlist {

struct OptimizeStats {
    std::size_t folded = 0;     ///< gates simplified by constant inputs
    std::size_t shared = 0;     ///< duplicate gates merged (CSE)
    std::size_t buffers = 0;    ///< buffers bypassed
    std::size_t dead = 0;       ///< unreachable gates dropped
    std::size_t total_removed() const {
        return folded + shared + buffers + dead;
    }
};

/// Returns an equivalent, usually smaller circuit.  Primary inputs and
/// outputs keep their order and names; a PO that reduces to a constant or
/// to another net is re-driven through a named buffer so the output list
/// stays intact.  Note: constants cannot exist in this IR, so folding only
/// applies to *structurally* constant subtrees (e.g. AND(x, NOT(x))).
Circuit optimize(const Circuit& circuit, OptimizeStats* stats = nullptr);

}  // namespace dlp::netlist
