// Gate-level combinational circuit IR.
//
// A circuit is a DAG of single-output gates.  Net j is, by definition, the
// output of gate j (primary inputs are gates of type Input), so nets and
// gates share one index space.  Gates can only reference already-created
// nets, which makes the gate order a topological order by construction.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace dlp::netlist {

/// Index of a net (== index of the gate driving it).
using NetId = std::uint32_t;
constexpr NetId kNoNet = static_cast<NetId>(-1);

enum class GateType : std::uint8_t {
    Input,  ///< primary input (no fanin)
    Buf,
    Not,
    And,
    Nand,
    Or,
    Nor,
    Xor,
    Xnor,
};

/// Human-readable gate-type name ("NAND", ...).
const char* gate_type_name(GateType type);

/// Evaluates a gate over bit-parallel words (one simulation per bit lane).
/// Input gates are invalid here; Buf/Not take exactly one operand.
std::uint64_t eval_gate(GateType type, std::span<const std::uint64_t> fanin);

struct Gate {
    GateType type = GateType::Input;
    std::string name;           ///< net name (unique within the circuit)
    std::vector<NetId> fanin;   ///< driving nets, in pin order
};

class Circuit {
public:
    explicit Circuit(std::string name = "circuit") : name_(std::move(name)) {}

    const std::string& name() const { return name_; }

    /// Adds a primary input; returns its net id.
    NetId add_input(std::string name);

    /// Adds a logic gate whose fanin nets must already exist.
    /// Throws std::invalid_argument on bad type/arity/fanin.
    NetId add_gate(GateType type, std::string name,
                   std::vector<NetId> fanin);

    /// Marks an existing net as a primary output (idempotent).
    void mark_output(NetId net);

    std::size_t gate_count() const { return gates_.size(); }
    const Gate& gate(NetId id) const { return gates_.at(id); }
    std::span<const Gate> gates() const { return gates_; }

    std::span<const NetId> inputs() const { return inputs_; }
    std::span<const NetId> outputs() const { return outputs_; }
    bool is_output(NetId net) const;

    /// Number of gates that are not primary inputs.
    std::size_t logic_gate_count() const { return gates_.size() - inputs_.size(); }

    /// Net id by name; returns kNoNet if absent (linear in circuit size only
    /// on first call; an index is built lazily).
    NetId find(const std::string& name) const;

    /// Fanout lists: for each net, the ids of gates reading it.
    std::vector<std::vector<NetId>> fanouts() const;

    /// Logic level per net (inputs are level 0).
    std::vector<int> levels() const;
    int depth() const;

    /// Structural sanity: every non-output net has fanout, names unique,
    /// arities valid.  Returns a list of violations (empty = clean).
    std::vector<std::string> validate() const;

    /// Gate count per type, indexed by static_cast<size_t>(GateType).
    std::vector<std::size_t> type_histogram() const;

private:
    std::string name_;
    std::vector<Gate> gates_;
    std::vector<NetId> inputs_;
    std::vector<NetId> outputs_;
};

}  // namespace dlp::netlist
