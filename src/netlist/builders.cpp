#include "netlist/builders.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

namespace dlp::netlist {

namespace {

/// Builds a balanced tree of 2-input gates of the given type.
NetId reduce_tree(Circuit& c, GateType type, std::vector<NetId> nets,
                  const std::string& prefix) {
    if (nets.empty()) throw std::invalid_argument("empty reduction");
    int stage = 0;
    while (nets.size() > 1) {
        std::vector<NetId> next;
        for (size_t i = 0; i + 1 < nets.size(); i += 2) {
            next.push_back(c.add_gate(
                type,
                prefix + "_t" + std::to_string(stage) + "_" +
                    std::to_string(i / 2),
                {nets[i], nets[i + 1]}));
        }
        if (nets.size() % 2 == 1) next.push_back(nets.back());
        nets = std::move(next);
        ++stage;
    }
    return nets[0];
}

}  // namespace

Circuit build_c17() {
    Circuit c("c17");
    const NetId n1 = c.add_input("1");
    const NetId n2 = c.add_input("2");
    const NetId n3 = c.add_input("3");
    const NetId n6 = c.add_input("6");
    const NetId n7 = c.add_input("7");
    const NetId n10 = c.add_gate(GateType::Nand, "10", {n1, n3});
    const NetId n11 = c.add_gate(GateType::Nand, "11", {n3, n6});
    const NetId n16 = c.add_gate(GateType::Nand, "16", {n2, n11});
    const NetId n19 = c.add_gate(GateType::Nand, "19", {n11, n7});
    const NetId n22 = c.add_gate(GateType::Nand, "22", {n10, n16});
    const NetId n23 = c.add_gate(GateType::Nand, "23", {n16, n19});
    c.mark_output(n22);
    c.mark_output(n23);
    return c;
}

Circuit build_c432() {
    Circuit c("c432");
    constexpr int kChannels = 9;
    std::vector<NetId> e(kChannels);
    std::vector<NetId> a(kChannels);
    std::vector<NetId> b(kChannels);
    std::vector<NetId> cc(kChannels);
    // ISCAS-85 pin order interleaves the buses; we group them for clarity.
    for (int i = 0; i < kChannels; ++i) e[i] = c.add_input("E" + std::to_string(i));
    for (int i = 0; i < kChannels; ++i) a[i] = c.add_input("A" + std::to_string(i));
    for (int i = 0; i < kChannels; ++i) b[i] = c.add_input("B" + std::to_string(i));
    for (int i = 0; i < kChannels; ++i) cc[i] = c.add_input("C" + std::to_string(i));

    // Enabled per-channel requests, one AND plane per bus (module M1).
    std::vector<NetId> ra(kChannels);
    std::vector<NetId> rb(kChannels);
    std::vector<NetId> rc(kChannels);
    for (int i = 0; i < kChannels; ++i) {
        const std::string s = std::to_string(i);
        ra[i] = c.add_gate(GateType::And, "RA" + s, {a[i], e[i]});
        rb[i] = c.add_gate(GateType::And, "RB" + s, {b[i], e[i]});
        rc[i] = c.add_gate(GateType::And, "RC" + s, {cc[i], e[i]});
    }

    // Bus grant logic, priority A > B > C (modules M2/M3).
    const NetId any_a = reduce_tree(c, GateType::Or, ra, "ANYA");
    const NetId any_b = reduce_tree(c, GateType::Or, rb, "ANYB");
    const NetId any_c = reduce_tree(c, GateType::Or, rc, "ANYC");
    const NetId pa = c.add_gate(GateType::Buf, "PA", {any_a});
    const NetId na = c.add_gate(GateType::Not, "NPA", {any_a});
    const NetId pb = c.add_gate(GateType::And, "PB", {any_b, na});
    const NetId nb = c.add_gate(GateType::Not, "NPB", {any_b});
    const NetId pc_pre = c.add_gate(GateType::And, "PCP", {na, nb});
    const NetId pc = c.add_gate(GateType::And, "PC", {any_c, pc_pre});

    // Channel selection: requests of the granted bus only (module M4).
    // An A-bus request needs no gating: any RA high already implies PA.
    std::vector<NetId> sel(kChannels);
    for (int i = 0; i < kChannels; ++i) {
        const std::string s = std::to_string(i);
        const NetId gb = c.add_gate(GateType::And, "GB" + s, {rb[i], pb});
        const NetId gc = c.add_gate(GateType::And, "GC" + s, {rc[i], pc});
        sel[i] = c.add_gate(GateType::Or, "SEL" + s, {ra[i], gb, gc});
    }

    // 9-input priority encoder, channel 8 highest (module M5): CHAN3..CHAN0
    // is the binary index of the highest requesting channel of the granted
    // bus.  hi[i] = sel[i] AND none of sel[i+1..8].
    std::vector<NetId> hi(kChannels);
    hi[kChannels - 1] = sel[kChannels - 1];
    NetId none_above = c.add_gate(GateType::Not, "NAB8", {sel[kChannels - 1]});
    for (int i = kChannels - 2; i >= 0; --i) {
        const std::string s = std::to_string(i);
        hi[i] = c.add_gate(GateType::And, "HI" + s, {sel[i], none_above});
        if (i > 0) {
            const NetId ni = c.add_gate(GateType::Not, "NS" + s, {sel[i]});
            none_above =
                c.add_gate(GateType::And, "NAB" + s, {none_above, ni});
        }
    }
    // Binary encode CHAN = granted channel index + 1 (0 = no grant), so
    // channel 0 is distinguishable and every hi[i] is observable.
    for (int bit = 3; bit >= 0; --bit) {
        std::vector<NetId> terms;
        for (int i = 0; i < kChannels; ++i)
            if ((i + 1) & (1 << bit)) terms.push_back(hi[i]);
        NetId out;
        if (terms.empty())
            // Encoder bits that are never set (none for 9 channels, but kept
            // general): constant 0 via x AND NOT x.
            out = c.add_gate(GateType::And, "CHAN" + std::to_string(bit),
                             {sel[0], c.add_gate(GateType::Not,
                                                 "NZ" + std::to_string(bit),
                                                 {sel[0]})});
        else if (terms.size() == 1)
            out = c.add_gate(GateType::Buf, "CHAN" + std::to_string(bit),
                             {terms[0]});
        else {
            const NetId t = reduce_tree(c, GateType::Or, terms,
                                        "ENC" + std::to_string(bit));
            out = c.add_gate(GateType::Buf, "CHAN" + std::to_string(bit), {t});
        }
        c.mark_output(out);
    }

    c.mark_output(pa);
    c.mark_output(pb);
    c.mark_output(pc);
    return c;
}

Circuit build_ripple_adder(int bits) {
    if (bits < 1) throw std::invalid_argument("adder needs >= 1 bit");
    Circuit c("adder" + std::to_string(bits));
    std::vector<NetId> a(bits);
    std::vector<NetId> b(bits);
    for (int i = 0; i < bits; ++i) a[i] = c.add_input("A" + std::to_string(i));
    for (int i = 0; i < bits; ++i) b[i] = c.add_input("B" + std::to_string(i));
    NetId carry = c.add_input("CIN");
    for (int i = 0; i < bits; ++i) {
        const std::string s = std::to_string(i);
        const NetId axb = c.add_gate(GateType::Xor, "AXB" + s, {a[i], b[i]});
        const NetId sum = c.add_gate(GateType::Xor, "S" + s, {axb, carry});
        const NetId g = c.add_gate(GateType::And, "G" + s, {a[i], b[i]});
        const NetId p = c.add_gate(GateType::And, "P" + s, {axb, carry});
        carry = c.add_gate(GateType::Or, "CO" + s, {g, p});
        c.mark_output(sum);
    }
    const NetId cout = c.add_gate(GateType::Buf, "COUT", {carry});
    c.mark_output(cout);
    return c;
}

Circuit build_parity_tree(int inputs) {
    if (inputs < 2) throw std::invalid_argument("parity needs >= 2 inputs");
    Circuit c("parity" + std::to_string(inputs));
    std::vector<NetId> d(inputs);
    for (int i = 0; i < inputs; ++i)
        d[static_cast<size_t>(i)] = c.add_input("D" + std::to_string(i));
    const NetId root = reduce_tree(c, GateType::Xor, d, "PT");
    const NetId out = c.add_gate(GateType::Buf, "PAR", {root});
    c.mark_output(out);
    return c;
}

Circuit build_mux_tree(int select_bits) {
    if (select_bits < 1 || select_bits > 8)
        throw std::invalid_argument("select_bits must be in [1,8]");
    Circuit c("mux" + std::to_string(select_bits));
    const int n = 1 << select_bits;
    std::vector<NetId> data(n);
    for (int i = 0; i < n; ++i)
        data[static_cast<size_t>(i)] = c.add_input("D" + std::to_string(i));
    std::vector<NetId> sel(select_bits);
    std::vector<NetId> nsel(select_bits);
    for (int i = 0; i < select_bits; ++i) {
        sel[static_cast<size_t>(i)] = c.add_input("S" + std::to_string(i));
        nsel[static_cast<size_t>(i)] = c.add_gate(
            GateType::Not, "NS" + std::to_string(i),
            {sel[static_cast<size_t>(i)]});
    }
    std::vector<NetId> layer = data;
    for (int s = 0; s < select_bits; ++s) {
        std::vector<NetId> next;
        for (size_t i = 0; i + 1 < layer.size(); i += 2) {
            const std::string tag =
                std::to_string(s) + "_" + std::to_string(i / 2);
            const NetId lo = c.add_gate(GateType::And, "M0_" + tag,
                                        {layer[i], nsel[static_cast<size_t>(s)]});
            const NetId hi = c.add_gate(GateType::And, "M1_" + tag,
                                        {layer[i + 1], sel[static_cast<size_t>(s)]});
            next.push_back(c.add_gate(GateType::Or, "MX_" + tag, {lo, hi}));
        }
        layer = std::move(next);
    }
    const NetId y = c.add_gate(GateType::Buf, "Y", {layer[0]});
    c.mark_output(y);
    return c;
}

Circuit build_decoder(int address_bits) {
    if (address_bits < 1 || address_bits > 6)
        throw std::invalid_argument("address_bits must be in [1,6]");
    Circuit c("dec" + std::to_string(address_bits));
    std::vector<NetId> addr(address_bits);
    std::vector<NetId> naddr(address_bits);
    for (int i = 0; i < address_bits; ++i) {
        addr[static_cast<size_t>(i)] = c.add_input("A" + std::to_string(i));
        naddr[static_cast<size_t>(i)] = c.add_gate(
            GateType::Not, "NA" + std::to_string(i),
            {addr[static_cast<size_t>(i)]});
    }
    const NetId en = c.add_input("EN");
    const int n = 1 << address_bits;
    for (int v = 0; v < n; ++v) {
        std::vector<NetId> lits{en};
        for (int bit = 0; bit < address_bits; ++bit)
            lits.push_back((v >> bit) & 1 ? addr[static_cast<size_t>(bit)]
                                          : naddr[static_cast<size_t>(bit)]);
        const NetId t = reduce_tree(c, GateType::And, lits,
                                    "T" + std::to_string(v));
        const NetId y =
            c.add_gate(GateType::Buf, "Y" + std::to_string(v), {t});
        c.mark_output(y);
    }
    return c;
}

Circuit build_alu(int bits) {
    if (bits < 1 || bits > 32)
        throw std::invalid_argument("alu bits must be in [1,32]");
    Circuit c("alu" + std::to_string(bits));
    std::vector<NetId> a(static_cast<size_t>(bits));
    std::vector<NetId> b(static_cast<size_t>(bits));
    for (int i = 0; i < bits; ++i)
        a[static_cast<size_t>(i)] = c.add_input("A" + std::to_string(i));
    for (int i = 0; i < bits; ++i)
        b[static_cast<size_t>(i)] = c.add_input("B" + std::to_string(i));
    const NetId cin = c.add_input("CIN");
    const NetId op0 = c.add_input("OP0");
    const NetId op1 = c.add_input("OP1");

    // Opcode decode: 00 ADD, 01 AND, 10 OR, 11 XOR.
    const NetId n0 = c.add_gate(GateType::Not, "NOP0", {op0});
    const NetId n1 = c.add_gate(GateType::Not, "NOP1", {op1});
    const NetId s_add = c.add_gate(GateType::And, "SADD", {n1, n0});
    const NetId s_and = c.add_gate(GateType::And, "SAND", {n1, op0});
    const NetId s_or = c.add_gate(GateType::And, "SOR", {op1, n0});
    const NetId s_xor = c.add_gate(GateType::And, "SXOR", {op1, op0});

    NetId carry = cin;
    std::vector<NetId> result(static_cast<size_t>(bits));
    for (int i = 0; i < bits; ++i) {
        const std::string s = std::to_string(i);
        const NetId ai = a[static_cast<size_t>(i)];
        const NetId bi = b[static_cast<size_t>(i)];
        const NetId axb = c.add_gate(GateType::Xor, "AXB" + s, {ai, bi});
        const NetId sum = c.add_gate(GateType::Xor, "SUM" + s, {axb, carry});
        const NetId g = c.add_gate(GateType::And, "G" + s, {ai, bi});
        const NetId p = c.add_gate(GateType::And, "P" + s, {axb, carry});
        carry = c.add_gate(GateType::Or, "CO" + s, {g, p});
        const NetId andv = c.add_gate(GateType::And, "ANDV" + s, {ai, bi});
        const NetId orv = c.add_gate(GateType::Or, "ORV" + s, {ai, bi});
        const NetId m_add = c.add_gate(GateType::And, "MADD" + s, {s_add, sum});
        const NetId m_and = c.add_gate(GateType::And, "MAND" + s, {s_and, andv});
        const NetId m_or = c.add_gate(GateType::And, "MOR" + s, {s_or, orv});
        const NetId m_xor = c.add_gate(GateType::And, "MXOR" + s, {s_xor, axb});
        result[static_cast<size_t>(i)] = c.add_gate(
            GateType::Or, "R" + s, {m_add, m_and, m_or, m_xor});
        c.mark_output(result[static_cast<size_t>(i)]);
    }
    const NetId cout = c.add_gate(GateType::Buf, "COUT", {carry});
    c.mark_output(cout);
    const NetId any = reduce_tree(c, GateType::Or, result, "ZT");
    const NetId z = c.add_gate(GateType::Not, "Z", {any});
    c.mark_output(z);
    return c;
}

Circuit build_hamming_corrector(int data_bits) {
    if (data_bits < 2 || data_bits > 57)
        throw std::invalid_argument("data_bits must be in [2,57]");
    // Smallest p with 2^p - p - 1 >= data_bits.
    int p = 2;
    while ((1 << p) - p - 1 < data_bits) ++p;

    Circuit c("hamming" + std::to_string(data_bits));
    std::vector<NetId> data(static_cast<size_t>(data_bits));
    std::vector<NetId> parity(static_cast<size_t>(p));
    for (int i = 0; i < data_bits; ++i)
        data[static_cast<size_t>(i)] = c.add_input("D" + std::to_string(i));
    for (int j = 0; j < p; ++j)
        parity[static_cast<size_t>(j)] = c.add_input("P" + std::to_string(j));

    // Code positions 1..2^p-1; powers of two hold parity, the rest data.
    std::vector<int> data_pos;
    for (int pos = 1; pos < (1 << p) && static_cast<int>(data_pos.size()) <
                                            data_bits; ++pos)
        if ((pos & (pos - 1)) != 0) data_pos.push_back(pos);

    // Syndrome bit j = P_j XOR (XOR of data bits whose position has bit j).
    std::vector<NetId> syn(static_cast<size_t>(p));
    std::vector<NetId> nsyn(static_cast<size_t>(p));
    for (int j = 0; j < p; ++j) {
        std::vector<NetId> terms{parity[static_cast<size_t>(j)]};
        for (int i = 0; i < data_bits; ++i)
            if (data_pos[static_cast<size_t>(i)] & (1 << j))
                terms.push_back(data[static_cast<size_t>(i)]);
        const NetId t =
            reduce_tree(c, GateType::Xor, terms, "ST" + std::to_string(j));
        syn[static_cast<size_t>(j)] =
            c.add_gate(GateType::Buf, "SYN" + std::to_string(j), {t});
        nsyn[static_cast<size_t>(j)] = c.add_gate(
            GateType::Not, "NSYN" + std::to_string(j),
            {syn[static_cast<size_t>(j)]});
    }

    // Correct: C_i = D_i XOR (syndrome == position_i).
    for (int i = 0; i < data_bits; ++i) {
        const std::string s = std::to_string(i);
        std::vector<NetId> lits;
        for (int j = 0; j < p; ++j)
            lits.push_back(data_pos[static_cast<size_t>(i)] & (1 << j)
                               ? syn[static_cast<size_t>(j)]
                               : nsyn[static_cast<size_t>(j)]);
        const NetId hit = reduce_tree(c, GateType::And, lits, "HIT" + s);
        const NetId corrected = c.add_gate(
            GateType::Xor, "C" + s, {data[static_cast<size_t>(i)], hit});
        c.mark_output(corrected);
    }
    return c;
}

Circuit build_random_circuit(int inputs, int gates, std::uint64_t seed) {
    if (inputs < 2 || gates < 1)
        throw std::invalid_argument("need >= 2 inputs and >= 1 gate");
    Circuit c("rand_i" + std::to_string(inputs) + "_g" +
              std::to_string(gates) + "_s" + std::to_string(seed));
    // splitmix64: deterministic, seedable, no global state.
    std::uint64_t state = seed;
    const auto next = [&state]() {
        state += 0x9e3779b97f4a7c15ULL;
        std::uint64_t z = state;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    };

    for (int i = 0; i < inputs; ++i) c.add_input("I" + std::to_string(i));
    static constexpr GateType kTypes[] = {
        GateType::Nand, GateType::Nor, GateType::And,
        GateType::Or,   GateType::Xor, GateType::Not};
    for (int g = 0; g < gates; ++g) {
        const GateType type = kTypes[next() % std::size(kTypes)];
        const NetId pool = static_cast<NetId>(c.gate_count());
        std::vector<NetId> fanin;
        const int arity = type == GateType::Not ? 1 : 2 + static_cast<int>(next() % 2);
        while (static_cast<int>(fanin.size()) < arity) {
            // Bias toward recent nets to keep the logic depth realistic.
            const NetId pick = next() % 2 == 0 && pool > 8
                                   ? pool - 1 - static_cast<NetId>(next() % 8)
                                   : static_cast<NetId>(next() % pool);
            if (std::find(fanin.begin(), fanin.end(), pick) == fanin.end())
                fanin.push_back(pick);
        }
        c.add_gate(type, "G" + std::to_string(g), std::move(fanin));
    }
    // Every dangling net becomes an observable output.
    const auto fo = c.fanouts();
    for (NetId n = 0; n < c.gate_count(); ++n)
        if (fo[n].empty()) c.mark_output(n);
    return c;
}

}  // namespace dlp::netlist
