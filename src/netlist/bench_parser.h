// Reader/writer for the ISCAS-85 / LGSynth ".bench" netlist format:
//
//   # comment
//   INPUT(1)
//   OUTPUT(22)
//   10 = NAND(1, 3)
//
// Gates are topologically sorted on load, so forward references are allowed.
#pragma once

#include <string>

#include "netlist/circuit.h"

namespace dlp::netlist {

/// Parses .bench text into a Circuit.  Throws std::runtime_error with a
/// line-numbered message on malformed input.
Circuit parse_bench(const std::string& text, std::string circuit_name);

/// Loads a .bench file from disk.
Circuit load_bench_file(const std::string& path);

/// Serializes a circuit back to .bench text (round-trips with parse_bench).
std::string to_bench(const Circuit& circuit);

/// Writes to_bench(circuit) to a file (e.g. the golden data/c432.bench
/// fixture).  Throws std::runtime_error on I/O failure.
void write_bench(const Circuit& circuit, const std::string& path);

}  // namespace dlp::netlist
