// Technology mapping: rewrites a circuit so every gate matches a cell in the
// standard-cell library (bounded arity, supported types).  Used before
// layout generation.
//
// Mapping rules:
//  * NAND/NOR/AND/OR with arity > max_arity are decomposed into balanced
//    trees of max_arity-input gates (de Morgan-correct: an N-wide NAND
//    becomes AND subtrees feeding a final NAND, etc.).
//  * XOR/XNOR with arity > 2 become XOR2 trees (final gate keeps polarity).
//  * Buf/Not pass through.
#pragma once

#include "netlist/circuit.h"

namespace dlp::netlist {

struct TechmapOptions {
    int max_arity = 4;          ///< widest supported NAND/NOR/AND/OR cell
    bool decompose_xor = true;  ///< rewrite XOR2/XNOR2 as four NAND2 (+ INV)
                                ///< for libraries without XOR cells
};

/// Returns a functionally equivalent circuit whose gates all fit the cell
/// library.  Net names of surviving gates are preserved; helper gates get
/// "name$mN" suffixes.  Primary inputs/outputs are preserved in order.
Circuit techmap(const Circuit& circuit, const TechmapOptions& options = {});

}  // namespace dlp::netlist
