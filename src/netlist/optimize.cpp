#include "netlist/optimize.h"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <vector>

namespace dlp::netlist {

namespace {

/// Symbolic value of a net in the optimized circuit.
struct Value {
    static constexpr std::int64_t kConst0 = -1;
    static constexpr std::int64_t kConst1 = -2;
    std::int64_t v = kConst0;

    static Value c0() { return {kConst0}; }
    static Value c1() { return {kConst1}; }
    static Value net(NetId id) { return {static_cast<std::int64_t>(id)}; }
    bool is_const() const { return v < 0; }
    bool is_one() const { return v == kConst1; }
    bool is_zero() const { return v == kConst0; }
    NetId id() const { return static_cast<NetId>(v); }
    bool operator==(const Value&) const = default;
};

using Signature = std::pair<GateType, std::vector<std::int64_t>>;

class Optimizer {
public:
    Optimizer(const Circuit& in, OptimizeStats* stats)
        : in_(in), out_(in.name()), stats_(stats) {}

    Circuit run() {
        values_.assign(in_.gate_count(), Value::c0());
        computed_.assign(in_.gate_count(), false);
        for (NetId pi : in_.inputs()) {
            values_[pi] = Value::net(out_.add_input(in_.gate(pi).name));
            computed_[pi] = true;
            not_of_.emplace_back(-1);  // one inverse slot per new net
        }
        // Drive evaluation from the primary outputs only: everything not
        // reached is dead.
        for (NetId po : in_.outputs()) {
            const Value v = eval(po);
            out_.mark_output(materialize_output(v, in_.gate(po).name));
        }
        return std::move(out_);
    }

private:
    Value eval(NetId old_net) {
        if (computed_[old_net]) return values_[old_net];
        const Gate& g = in_.gate(old_net);
        std::vector<Value> in_vals;
        in_vals.reserve(g.fanin.size());
        for (NetId f : g.fanin) in_vals.push_back(eval(f));
        const Value v = simplify(g.type, std::move(in_vals), g.name);
        values_[old_net] = v;
        computed_[old_net] = true;
        return v;
    }

    /// Complement relation between two already-materialized values.
    bool complementary(const Value& a, const Value& b) {
        if (a.is_const() && b.is_const()) return a.v != b.v;
        if (a.is_const() || b.is_const()) return false;
        return not_of_[a.id()] == static_cast<std::int64_t>(b.id()) ||
               not_of_[b.id()] == static_cast<std::int64_t>(a.id());
    }

    Value make_not(Value x, const std::string& hint) {
        if (x.is_const()) return x.is_zero() ? Value::c1() : Value::c0();
        if (not_of_[x.id()] >= 0)
            return Value::net(static_cast<NetId>(not_of_[x.id()]));
        const Value v = emit(GateType::Not, {x}, hint);
        // emit() may have CSE-hit an existing NOT; either way link both ways.
        not_of_[x.id()] = static_cast<std::int64_t>(v.id());
        not_of_[v.id()] = static_cast<std::int64_t>(x.id());
        return v;
    }

    Value simplify(GateType type, std::vector<Value> ins,
                   const std::string& name) {
        switch (type) {
            case GateType::Input:
                throw std::logic_error("inputs handled in run()");
            case GateType::Buf:
                if (stats_) ++stats_->buffers;
                return ins[0];
            case GateType::Not:
                return make_not(ins[0], name);
            case GateType::And:
            case GateType::Nand:
            case GateType::Or:
            case GateType::Nor: {
                const bool and_like =
                    type == GateType::And || type == GateType::Nand;
                const bool invert =
                    type == GateType::Nand || type == GateType::Nor;
                // Controlling / identity constants.
                std::vector<Value> kept;
                for (const Value& v : ins) {
                    if (and_like ? v.is_zero() : v.is_one()) {
                        if (stats_) ++stats_->folded;
                        Value c = and_like ? Value::c0() : Value::c1();
                        return invert ? make_not(c, name) : c;
                    }
                    if (and_like ? v.is_one() : v.is_zero()) continue;
                    if (std::find(kept.begin(), kept.end(), v) == kept.end())
                        kept.push_back(v);
                }
                for (size_t i = 0; i < kept.size(); ++i)
                    for (size_t j = i + 1; j < kept.size(); ++j)
                        if (complementary(kept[i], kept[j])) {
                            if (stats_) ++stats_->folded;
                            Value c = and_like ? Value::c0() : Value::c1();
                            return invert ? make_not(c, name) : c;
                        }
                if (kept.empty()) {
                    if (stats_) ++stats_->folded;
                    Value c = and_like ? Value::c1() : Value::c0();
                    return invert ? make_not(c, name) : c;
                }
                if (kept.size() == 1) {
                    if (stats_) ++stats_->folded;
                    return invert ? make_not(kept[0], name) : kept[0];
                }
                // Commutative: canonical operand order for CSE.
                std::sort(kept.begin(), kept.end(),
                          [](const Value& a, const Value& b) {
                              return a.v < b.v;
                          });
                return emit(type, kept, name);
            }
            case GateType::Xor:
            case GateType::Xnor: {
                bool parity = type == GateType::Xnor;
                std::vector<Value> kept;
                for (const Value& v : ins) {
                    if (v.is_const()) {
                        parity ^= v.is_one();
                        continue;
                    }
                    // x ^ x = 0.
                    const auto it = std::find(kept.begin(), kept.end(), v);
                    if (it != kept.end())
                        kept.erase(it);
                    else
                        kept.push_back(v);
                }
                // x ^ !x = 1 for any complementary pair.
                for (size_t i = 0; i < kept.size(); ++i)
                    for (size_t j = i + 1; j < kept.size(); ++j)
                        if (complementary(kept[i], kept[j])) {
                            kept.erase(kept.begin() + static_cast<long>(j));
                            kept.erase(kept.begin() + static_cast<long>(i));
                            parity ^= true;
                            i = static_cast<size_t>(-1);  // restart scan
                            break;
                        }
                if (kept.empty()) {
                    if (stats_) ++stats_->folded;
                    return parity ? Value::c1() : Value::c0();
                }
                if (kept.size() == 1) {
                    if (stats_) ++stats_->folded;
                    return parity ? make_not(kept[0], name) : kept[0];
                }
                std::sort(kept.begin(), kept.end(),
                          [](const Value& a, const Value& b) {
                              return a.v < b.v;
                          });
                return emit(parity ? GateType::Xnor : GateType::Xor, kept,
                            name);
            }
        }
        throw std::logic_error("unknown gate type");
    }

    Value emit(GateType type, const std::vector<Value>& ins,
               const std::string& name) {
        Signature sig{type, {}};
        sig.second.reserve(ins.size());
        for (const Value& v : ins) sig.second.push_back(v.v);
        const auto it = cse_.find(sig);
        if (it != cse_.end()) {
            if (stats_) ++stats_->shared;
            return Value::net(it->second);
        }
        std::vector<NetId> fanin;
        fanin.reserve(ins.size());
        for (const Value& v : ins) fanin.push_back(v.id());
        const NetId id = out_.add_gate(type, unique_name(name),
                                       std::move(fanin));
        not_of_.emplace_back(-1);
        cse_[sig] = id;
        ++emitted_;
        return Value::net(id);
    }

    /// POs must survive even when they reduce to a constant, a PI or a net
    /// that is already an output: wrap in a buffer (constants become
    /// x AND NOT x / x OR NOT x over the first input).
    NetId materialize_output(Value v, const std::string& name) {
        if (v.is_const()) {
            if (in_.inputs().empty())
                throw std::logic_error("constant PO in a circuit without PIs");
            const Value pi = values_[in_.inputs()[0]];
            const Value npi = make_not(pi, name + "$n");
            const NetId id = out_.add_gate(
                v.is_zero() ? GateType::And : GateType::Or,
                unique_name(name), {pi.id(), npi.id()});
            not_of_.emplace_back(-1);
            return id;
        }
        // Keep the PO's own name where possible.
        if (out_.gate(v.id()).name == name && !out_.is_output(v.id()))
            return v.id();
        const NetId id =
            out_.add_gate(GateType::Buf, unique_name(name), {v.id()});
        not_of_.emplace_back(-1);
        return id;
    }

    std::string unique_name(const std::string& base) {
        if (out_.find(base) == kNoNet) return base;
        int n = 1;
        while (out_.find(base + "$o" + std::to_string(n)) != kNoNet) ++n;
        return base + "$o" + std::to_string(n);
    }

    const Circuit& in_;
    Circuit out_;
    OptimizeStats* stats_;
    std::vector<Value> values_;
    std::vector<bool> computed_;
    std::vector<std::int64_t> not_of_;  ///< per new net: its inverse, or -1
    std::map<Signature, NetId> cse_;
    std::size_t emitted_ = 0;
};

}  // namespace

namespace {

/// Copies only the gates reachable from the primary outputs (simplified
/// subtrees can leave helper gates - e.g. an inverter feeding a gate that
/// later folded to a constant - with no remaining readers).
Circuit strip_dead(const Circuit& in) {
    std::vector<char> live(in.gate_count(), 0);
    // Reverse topological mark: NetId order is topological, so one reverse
    // pass suffices.
    for (NetId po : in.outputs()) live[po] = 1;
    for (NetId g = static_cast<NetId>(in.gate_count()); g-- > 0;)
        if (live[g])
            for (NetId f : in.gate(g).fanin) live[f] = 1;

    Circuit out(in.name());
    std::vector<NetId> remap(in.gate_count(), kNoNet);
    for (NetId g = 0; g < in.gate_count(); ++g) {
        const Gate& gate = in.gate(g);
        if (gate.type == GateType::Input) {
            remap[g] = out.add_input(gate.name);  // PIs always survive
            continue;
        }
        if (!live[g]) continue;
        std::vector<NetId> fanin;
        fanin.reserve(gate.fanin.size());
        for (NetId f : gate.fanin) fanin.push_back(remap[f]);
        remap[g] = out.add_gate(gate.type, gate.name, std::move(fanin));
    }
    for (NetId po : in.outputs()) out.mark_output(remap[po]);
    return out;
}

}  // namespace

Circuit optimize(const Circuit& circuit, OptimizeStats* stats) {
    if (stats) *stats = {};
    Optimizer opt(circuit, stats);
    Circuit out = strip_dead(opt.run());
    if (stats) {
        const std::size_t before = circuit.logic_gate_count();
        const std::size_t after = out.logic_gate_count();
        stats->dead = before > after + stats->folded + stats->shared +
                                  stats->buffers
                          ? before - after - stats->folded - stats->shared -
                                stats->buffers
                          : 0;
    }
    return out;
}

}  // namespace dlp::netlist
