#include "netlist/techmap.h"

#include <stdexcept>
#include <string>
#include <vector>

namespace dlp::netlist {

namespace {

class Mapper {
public:
    Mapper(const Circuit& in, const TechmapOptions& options)
        : in_(in), out_(in.name()), options_(options) {
        if (options.max_arity < 2)
            throw std::invalid_argument("max_arity must be >= 2");
    }

    Circuit run() {
        map_.assign(in_.gate_count(), kNoNet);
        for (NetId g = 0; g < in_.gate_count(); ++g) map_gate(g);
        for (NetId po : in_.outputs()) out_.mark_output(map_[po]);
        return std::move(out_);
    }

private:
    /// Splits `nets` into a balanced tree of AND (for NAND/AND) or OR (for
    /// NOR/OR) gates with bounded arity, returning the top-level operand
    /// list (size <= max_arity) for the final gate.
    std::vector<NetId> reduce(GateType inner, std::vector<NetId> nets,
                              const std::string& base) {
        const size_t width = static_cast<size_t>(options_.max_arity);
        while (nets.size() > width) {
            std::vector<NetId> next;
            for (size_t i = 0; i < nets.size(); i += width) {
                const size_t take = std::min(width, nets.size() - i);
                if (take == 1) {
                    next.push_back(nets[i]);
                    continue;
                }
                std::vector<NetId> group(nets.begin() + static_cast<long>(i),
                                         nets.begin() + static_cast<long>(i + take));
                next.push_back(out_.add_gate(
                    inner, base + "$m" + std::to_string(helper_++),
                    std::move(group)));
            }
            nets = std::move(next);
        }
        return nets;
    }

    void map_gate(NetId g) {
        const Gate& gate = in_.gate(g);
        if (gate.type == GateType::Input) {
            map_[g] = out_.add_input(gate.name);
            return;
        }
        std::vector<NetId> fanin;
        fanin.reserve(gate.fanin.size());
        for (NetId f : gate.fanin) fanin.push_back(map_[f]);

        switch (gate.type) {
            case GateType::Buf:
            case GateType::Not:
                map_[g] = out_.add_gate(gate.type, gate.name, std::move(fanin));
                return;
            case GateType::And:
            case GateType::Nand: {
                auto top = reduce(GateType::And, std::move(fanin), gate.name);
                map_[g] = top.size() == 1 && gate.type == GateType::And
                              ? out_.add_gate(GateType::Buf, gate.name,
                                              std::move(top))
                              : out_.add_gate(gate.type, gate.name,
                                              std::move(top));
                return;
            }
            case GateType::Or:
            case GateType::Nor: {
                auto top = reduce(GateType::Or, std::move(fanin), gate.name);
                map_[g] = top.size() == 1 && gate.type == GateType::Or
                              ? out_.add_gate(GateType::Buf, gate.name,
                                              std::move(top))
                              : out_.add_gate(gate.type, gate.name,
                                              std::move(top));
                return;
            }
            case GateType::Xor:
            case GateType::Xnor: {
                if (options_.decompose_xor) {
                    // Left fold of 2-input XORs, each as four NAND2s; the
                    // final polarity inverter (for XNOR) keeps the name.
                    NetId cur = fanin[0];
                    for (size_t i = 1; i < fanin.size(); ++i) {
                        const bool last = i + 1 == fanin.size();
                        const std::string base =
                            gate.name + "$m" + std::to_string(helper_++);
                        const NetId a = cur;
                        const NetId b = fanin[i];
                        const NetId n1 =
                            out_.add_gate(GateType::Nand, base + "a", {a, b});
                        const NetId n2 =
                            out_.add_gate(GateType::Nand, base + "b", {a, n1});
                        const NetId n3 =
                            out_.add_gate(GateType::Nand, base + "c", {n1, b});
                        const std::string out_name =
                            last && gate.type == GateType::Xor ? gate.name
                                                               : base + "d";
                        cur = out_.add_gate(GateType::Nand, out_name,
                                            {n2, n3});
                    }
                    map_[g] = gate.type == GateType::Xor
                                  ? cur
                                  : out_.add_gate(GateType::Not, gate.name,
                                                  {cur});
                    return;
                }
                // Pairwise XOR tree; final gate carries the polarity.
                std::vector<NetId> nets = std::move(fanin);
                while (nets.size() > 2) {
                    std::vector<NetId> next;
                    for (size_t i = 0; i + 1 < nets.size(); i += 2)
                        next.push_back(out_.add_gate(
                            GateType::Xor,
                            gate.name + "$m" + std::to_string(helper_++),
                            {nets[i], nets[i + 1]}));
                    if (nets.size() % 2 == 1) next.push_back(nets.back());
                    nets = std::move(next);
                }
                if (nets.size() == 1)
                    map_[g] = out_.add_gate(gate.type == GateType::Xor
                                                ? GateType::Buf
                                                : GateType::Not,
                                            gate.name, std::move(nets));
                else
                    map_[g] = out_.add_gate(gate.type, gate.name,
                                            std::move(nets));
                return;
            }
            case GateType::Input:
                break;
        }
        throw std::logic_error("unreachable gate type in techmap");
    }

    const Circuit& in_;
    Circuit out_;
    TechmapOptions options_;
    std::vector<NetId> map_;
    int helper_ = 0;
};

}  // namespace

Circuit techmap(const Circuit& circuit, const TechmapOptions& options) {
    return Mapper(circuit, options).run();
}

}  // namespace dlp::netlist
