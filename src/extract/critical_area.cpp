#include "extract/critical_area.h"

#include <algorithm>

namespace dlp::extract {

double short_weight(double facing_length, double spacing, double x0) {
    if (facing_length <= 0.0) return 0.0;
    const double s = std::max(spacing, x0);  // cap below the minimum size
    return facing_length * x0 * x0 / s;
}

double open_weight(double run_length, double width, double x0) {
    if (run_length <= 0.0) return 0.0;
    const double w = std::max(width, x0);
    return run_length * x0 * x0 / w;
}

std::optional<Facing> facing(const cell::Rect& a, const cell::Rect& b,
                             std::int64_t max_spacing) {
    const std::int64_t x_overlap =
        std::min(a.x2, b.x2) - std::max(a.x1, b.x1);
    const std::int64_t y_overlap =
        std::min(a.y2, b.y2) - std::max(a.y1, b.y1);
    if (x_overlap > 0 && y_overlap > 0) return std::nullopt;  // intersecting

    if (x_overlap > 0) {
        // Vertically separated, horizontally facing run.
        const std::int64_t gap = std::max(a.y1, b.y1) - std::min(a.y2, b.y2);
        if (gap <= 0 || gap > max_spacing) return std::nullopt;
        return Facing{static_cast<double>(x_overlap),
                      static_cast<double>(gap)};
    }
    if (y_overlap > 0) {
        const std::int64_t gap = std::max(a.x1, b.x1) - std::min(a.x2, b.x2);
        if (gap <= 0 || gap > max_spacing) return std::nullopt;
        return Facing{static_cast<double>(y_overlap),
                      static_cast<double>(gap)};
    }
    return std::nullopt;  // diagonal only
}

}  // namespace dlp::extract
