#include "extract/monte_carlo.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace dlp::extract {

namespace {

using cell::Layer;
using cell::NetRef;
using layout::FlatShape;

/// splitmix64 (as in gatesim::RandomPatternGenerator; duplicated to keep
/// the extract library independent of gatesim).
struct Rng {
    std::uint64_t state;
    std::uint64_t next() {
        state += 0x9e3779b97f4a7c15ULL;
        std::uint64_t z = state;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }
    double uniform() {  // in [0,1)
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }
};

/// Uniform spatial grid over one layer's shapes.
class Grid {
public:
    Grid(const std::vector<const FlatShape*>& shapes, double x_lo,
         double y_lo, double x_hi, double y_hi, double cell)
        : x_lo_(x_lo), y_lo_(y_lo), cell_(cell) {
        nx_ = std::max<long>(1, static_cast<long>((x_hi - x_lo) / cell) + 1);
        ny_ = std::max<long>(1, static_cast<long>((y_hi - y_lo) / cell) + 1);
        bins_.resize(static_cast<size_t>(nx_ * ny_));
        for (const FlatShape* s : shapes) {
            const long cx1 = clamp_x(static_cast<double>(s->rect.x1));
            const long cx2 = clamp_x(static_cast<double>(s->rect.x2));
            const long cy1 = clamp_y(static_cast<double>(s->rect.y1));
            const long cy2 = clamp_y(static_cast<double>(s->rect.y2));
            for (long gx = cx1; gx <= cx2; ++gx)
                for (long gy = cy1; gy <= cy2; ++gy)
                    bins_[static_cast<size_t>(gy * nx_ + gx)].push_back(s);
        }
    }

    /// Visits shapes whose bins intersect the disk's bounding box.
    template <typename Fn>
    void for_near(double cx, double cy, double r, Fn&& fn) const {
        const long gx1 = clamp_x(cx - r);
        const long gx2 = clamp_x(cx + r);
        const long gy1 = clamp_y(cy - r);
        const long gy2 = clamp_y(cy + r);
        for (long gx = gx1; gx <= gx2; ++gx)
            for (long gy = gy1; gy <= gy2; ++gy)
                for (const FlatShape* s :
                     bins_[static_cast<size_t>(gy * nx_ + gx)])
                    fn(*s);
    }

private:
    long clamp_x(double x) const {
        return std::clamp<long>(static_cast<long>((x - x_lo_) / cell_), 0,
                                nx_ - 1);
    }
    long clamp_y(double y) const {
        return std::clamp<long>(static_cast<long>((y - y_lo_) / cell_), 0,
                                ny_ - 1);
    }
    double x_lo_, y_lo_, cell_;
    long nx_ = 1, ny_ = 1;
    std::vector<std::vector<const FlatShape*>> bins_;
};

bool disk_touches(const FlatShape& s, double cx, double cy, double r) {
    const double dx = std::max({static_cast<double>(s.rect.x1) - cx, 0.0,
                                cx - static_cast<double>(s.rect.x2)});
    const double dy = std::max({static_cast<double>(s.rect.y1) - cy, 0.0,
                                cy - static_cast<double>(s.rect.y2)});
    return dx * dx + dy * dy <= r * r;
}

/// Missing-material break: the disk spans the shape's full narrow
/// dimension at the defect's center coordinate (the model behind
/// A(x) = L * (x - w)).
bool disk_breaks(const FlatShape& s, double cx, double cy, double r) {
    const bool horizontal = s.rect.width() >= s.rect.height();
    if (horizontal) {
        if (cx < static_cast<double>(s.rect.x1) ||
            cx > static_cast<double>(s.rect.x2))
            return false;
        return cy - r <= static_cast<double>(s.rect.y1) &&
               cy + r >= static_cast<double>(s.rect.y2);
    }
    if (cy < static_cast<double>(s.rect.y1) ||
        cy > static_cast<double>(s.rect.y2))
        return false;
    return cx - r <= static_cast<double>(s.rect.x1) &&
           cx + r >= static_cast<double>(s.rect.x2);
}

bool conducting_layer(Layer layer) {
    switch (layer) {
        case Layer::NDiff:
        case Layer::PDiff:
        case Layer::Poly:
        case Layer::Metal1:
        case Layer::Metal2:
            return true;
        default:
            return false;
    }
}

}  // namespace

double MonteCarloResult::total_short_weight() const {
    double sum = 0.0;
    for (double w : short_weight) sum += w;
    return sum;
}

double MonteCarloResult::total_open_weight() const {
    double sum = 0.0;
    for (double w : open_weight) sum += w;
    return sum;
}

MonteCarloResult estimate_critical_weights(const layout::ChipLayout& chip,
                                           const DefectStatistics& stats,
                                           const MonteCarloOptions& options) {
    MonteCarloResult result;
    result.samples_per_layer = options.samples_per_layer;
    const auto flat = layout::flatten(chip);

    const double x_lo = static_cast<double>(chip.die.x1) - options.margin;
    const double y_lo = static_cast<double>(chip.die.y1) - options.margin;
    const double x_hi = static_cast<double>(chip.die.x2) + options.margin;
    const double y_hi = static_cast<double>(chip.die.y2) + options.margin;
    const double window = (x_hi - x_lo) * (y_hi - y_lo);

    Rng rng{options.seed};
    // Size density p(x) = 2 x0^2 / x^3 for x >= x0: inverse-CDF sampling
    // x = x0 / sqrt(1 - u), truncated at max_diameter.
    const auto sample_diameter = [&]() {
        const double u = rng.uniform();
        const double x = stats.x0 / std::sqrt(1.0 - u);
        return std::min(x, options.max_diameter);
    };

    for (int li = 0; li < cell::kLayerCount; ++li) {
        const Layer layer = static_cast<Layer>(li);
        if (!conducting_layer(layer)) continue;
        const double d_short = stats.shorts(layer);
        const double d_open = stats.opens(layer);
        if (d_short <= 0.0 && d_open <= 0.0) continue;

        std::vector<const FlatShape*> shapes;
        for (const FlatShape& s : flat)
            if (s.layer == layer) shapes.push_back(&s);
        if (shapes.empty()) continue;
        const Grid grid(shapes, x_lo, y_lo, x_hi, y_hi, 32.0);

        long short_hits = 0;
        long open_hits = 0;
        std::map<std::pair<NetRef, NetRef>, long> pair_hits;
        for (long n = 0; n < options.samples_per_layer; ++n) {
            const double cx = x_lo + rng.uniform() * (x_hi - x_lo);
            const double cy = y_lo + rng.uniform() * (y_hi - y_lo);
            const double r = sample_diameter() / 2.0;

            // Extra material: which nets does the disk touch?
            std::set<NetRef> touched;
            grid.for_near(cx, cy, r, [&](const FlatShape& s) {
                if (disk_touches(s, cx, cy, r)) touched.insert(s.net);
            });
            if (touched.size() >= 2) {
                ++short_hits;
                auto it = touched.begin();
                const NetRef a = *it++;
                const NetRef b = *it;
                ++pair_hits[{a, b}];
            }

            // Missing material: does the disk sever any wire?  (Sampled
            // with the same random defect - the mechanisms have separate
            // densities, so the estimates scale independently.)
            bool breaks = false;
            grid.for_near(cx, cy, r, [&](const FlatShape& s) {
                if (!breaks && disk_breaks(s, cx, cy, r)) breaks = true;
            });
            if (breaks) ++open_hits;
        }

        const double per_sample = window / static_cast<double>(
                                               options.samples_per_layer);
        result.short_weight[li] =
            d_short * per_sample * static_cast<double>(short_hits);
        result.open_weight[li] =
            d_open * per_sample * static_cast<double>(open_hits);
        for (const auto& [nets, hits] : pair_hits)
            result.bridges[nets] +=
                d_short * per_sample * static_cast<double>(hits);
    }
    return result;
}

}  // namespace dlp::extract
