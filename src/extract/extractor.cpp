#include "extract/extractor.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <tuple>

#include "extract/critical_area.h"

namespace dlp::extract {

namespace {

using cell::Layer;
using cell::NetRef;
using layout::FlatShape;

bool conducting_layer(Layer layer) {
    switch (layer) {
        case Layer::NDiff:
        case Layer::PDiff:
        case Layer::Poly:
        case Layer::Metal1:
        case Layer::Metal2:
            return true;
        default:
            return false;
    }
}

bool cut_layer(Layer layer) {
    return layer == Layer::Contact || layer == Layer::Via;
}

std::string ref_name(const NetRef& r) { return cell::net_ref_name(r); }

}  // namespace

const char* fault_kind_name(ExtractedFault::Kind kind) {
    switch (kind) {
        case ExtractedFault::Kind::Bridge: return "bridge";
        case ExtractedFault::Kind::TransistorOpen: return "transistor-open";
        case ExtractedFault::Kind::GateFloat: return "gate-float";
        case ExtractedFault::Kind::NetOpen: return "net-open";
        case ExtractedFault::Kind::PoFloat: return "po-float";
        case ExtractedFault::Kind::Gross: return "gross";
    }
    return "?";
}

double ExtractionResult::yield() const { return std::exp(-total_weight); }

std::vector<double> ExtractionResult::weights() const {
    std::vector<double> out;
    out.reserve(faults.size());
    for (const auto& f : faults) out.push_back(f.weight);
    return out;
}

ExtractionResult extract_faults(const layout::ChipLayout& chip,
                                const DefectStatistics& stats,
                                const ExtractOptions& options) {
    ExtractionResult result;
    const auto flat = layout::flatten(chip);

    const auto account = [&result](const std::string& cls, double w) {
        result.weight_by_class[cls] += w;
        result.total_weight += w;
    };

    // ---------------- bridges: same-layer parallel runs -----------------
    std::map<std::pair<NetRef, NetRef>, std::pair<double, Layer>> bridges;
    std::map<std::tuple<NetRef, NetRef, NetRef>, std::pair<double, Layer>>
        triples;
    {
        // A facing neighbour of a shape, on one of its four sides.
        struct Neighbour {
            const FlatShape* other;
            double gap;
            std::int64_t lo, hi;  ///< overlap interval along the run axis
        };
        std::vector<const FlatShape*> layer_shapes;
        std::map<const FlatShape*, std::array<std::vector<Neighbour>, 4>>
            sides;  // 0: above, 1: below, 2: right, 3: left
        for (int li = 0; li < cell::kLayerCount; ++li) {
            const Layer layer = static_cast<Layer>(li);
            if (!conducting_layer(layer)) continue;
            const double density = stats.shorts(layer);
            if (density <= 0.0) continue;
            layer_shapes.clear();
            sides.clear();
            for (const FlatShape& s : flat)
                if (s.layer == layer) layer_shapes.push_back(&s);
            std::sort(layer_shapes.begin(), layer_shapes.end(),
                      [](const FlatShape* a, const FlatShape* b) {
                          return a->rect.x1 < b->rect.x1;
                      });
            for (size_t i = 0; i < layer_shapes.size(); ++i) {
                const FlatShape& a = *layer_shapes[i];
                for (size_t j = i + 1; j < layer_shapes.size(); ++j) {
                    const FlatShape& b = *layer_shapes[j];
                    if (b.rect.x1 > a.rect.x2 + options.max_bridge_spacing)
                        break;
                    if (a.net == b.net) continue;
                    const auto f = facing(a.rect, b.rect,
                                          options.max_bridge_spacing);
                    if (!f) continue;
                    const double w =
                        density * short_weight(f->length, f->spacing, stats.x0);
                    if (w <= 0.0) continue;
                    auto key = std::minmax(a.net, b.net);
                    auto [it, fresh] = bridges.try_emplace(
                        std::pair{key.first, key.second},
                        std::pair{0.0, layer});
                    it->second.first += w;
                    (void)fresh;
                    if (options.multi_node_bridges) {
                        // Record the facing relation for triple extraction.
                        const std::int64_t x_ov =
                            std::min(a.rect.x2, b.rect.x2) -
                            std::max(a.rect.x1, b.rect.x1);
                        if (x_ov > 0) {
                            const std::int64_t lo =
                                std::max(a.rect.x1, b.rect.x1);
                            const std::int64_t hi =
                                std::min(a.rect.x2, b.rect.x2);
                            const bool b_above = b.rect.y1 >= a.rect.y2;
                            sides[&a][b_above ? 0 : 1].push_back(
                                {&b, f->spacing, lo, hi});
                            sides[&b][b_above ? 1 : 0].push_back(
                                {&a, f->spacing, lo, hi});
                        } else {
                            const std::int64_t lo =
                                std::max(a.rect.y1, b.rect.y1);
                            const std::int64_t hi =
                                std::min(a.rect.y2, b.rect.y2);
                            const bool b_right = b.rect.x1 >= a.rect.x2;
                            sides[&a][b_right ? 2 : 3].push_back(
                                {&b, f->spacing, lo, hi});
                            sides[&b][b_right ? 3 : 2].push_back(
                                {&a, f->spacing, lo, hi});
                        }
                    }
                }
            }
            if (!options.multi_node_bridges) continue;
            // Triples: a defect spanning a wire and both facing neighbours
            // shorts three nets at once (paper: bridging faults usually
            // affect multiple nodes).  Weight uses the full span, so these
            // are rarer (bigger defects) but far easier to detect.
            for (const auto& [mid, quad] : sides) {
                for (int axis = 0; axis < 2; ++axis) {
                    const auto& first = quad[axis == 0 ? 0 : 2];
                    const auto& second = quad[axis == 0 ? 1 : 3];
                    const std::int64_t mid_width =
                        axis == 0 ? mid->rect.height() : mid->rect.width();
                    for (const Neighbour& na : first)
                        for (const Neighbour& nc : second) {
                            if (na.other->net == nc.other->net) continue;
                            const std::int64_t lo = std::max(na.lo, nc.lo);
                            const std::int64_t hi = std::min(na.hi, nc.hi);
                            if (hi <= lo) continue;
                            const double span = na.gap + nc.gap +
                                                static_cast<double>(mid_width);
                            const double w =
                                density *
                                short_weight(static_cast<double>(hi - lo),
                                             span, stats.x0);
                            if (w <= 0.0) continue;
                            std::array<NetRef, 3> nets{na.other->net,
                                                       mid->net,
                                                       nc.other->net};
                            std::sort(nets.begin(), nets.end());
                            auto [it, fresh] = triples.try_emplace(
                                std::tuple{nets[0], nets[1], nets[2]},
                                std::pair{0.0, layer});
                            it->second.first += w;
                            (void)fresh;
                        }
                }
            }
        }
    }

    // Gate-oxide pinholes: gate-to-channel shorts, one per transistor.
    for (const auto& gr : layout::flatten_gate_regions(chip)) {
        if (stats.pinhole_density <= 0.0) break;
        const cell::Cell& c = *chip.cells[static_cast<size_t>(gr.instance)].cell;
        const cell::Transistor& t =
            c.transistors[static_cast<size_t>(gr.transistor)];
        const NetRef gate = layout::resolve_local_net(chip, gr.instance, t.gate);
        const NetRef drain =
            layout::resolve_local_net(chip, gr.instance, t.drain);
        const double w =
            stats.pinhole_density * static_cast<double>(gr.rect.area());
        if (w <= 0.0 || gate == drain) continue;
        auto key = std::minmax(gate, drain);
        auto [it, fresh] = bridges.try_emplace(
            std::pair{key.first, key.second},
            std::pair{0.0, Layer::Poly});
        it->second.first += w;
        (void)fresh;
    }

    for (const auto& [nets, wl] : bridges) {
        const auto& [a, b] = nets;
        const auto& [w, layer] = wl;
        ExtractedFault fault;
        fault.weight = w;
        if (a.is_power() && b.is_power()) {
            fault.kind = ExtractedFault::Kind::Gross;
            fault.description = "gross supply short";
            account("gross", w);
        } else {
            fault.kind = ExtractedFault::Kind::Bridge;
            fault.a = a;
            fault.b = b;
            fault.description =
                "bridge " + ref_name(a) + "~" + ref_name(b);
            account(std::string("bridge.") + cell::layer_name(layer), w);
        }
        if (fault.weight >= options.min_weight)
            result.faults.push_back(std::move(fault));
    }
    for (const auto& [nets, wl] : triples) {
        const auto& [a, b, c] = nets;
        const auto& [w, layer] = wl;
        ExtractedFault fault;
        fault.weight = w;
        const int power_count = (a.is_power() ? 1 : 0) +
                                (b.is_power() ? 1 : 0) +
                                (c.is_power() ? 1 : 0);
        if (power_count >= 2) {
            // The three nets include both rails: a supply short.
            fault.kind = ExtractedFault::Kind::Gross;
            fault.description = "gross supply short (triple)";
            account("gross", w);
        } else {
            fault.kind = ExtractedFault::Kind::Bridge;
            fault.a = a;
            fault.b = b;
            fault.c = c;
            fault.description = "bridge3 " + ref_name(a) + "~" +
                                ref_name(b) + "~" + ref_name(c);
            account(std::string("bridge3.") + cell::layer_name(layer), w);
        }
        if (fault.weight >= options.min_weight)
            result.faults.push_back(std::move(fault));
    }

    // ---------------- opens ---------------------------------------------
    struct OpenKey {
        ExtractedFault::Kind kind;
        std::int32_t instance;
        std::vector<std::pair<std::int32_t, int>> transistors;
        netlist::NetId net;
        int sink;
        int po;
        bool operator<(const OpenKey& o) const {
            return std::tie(kind, instance, transistors, net, sink, po) <
                   std::tie(o.kind, o.instance, o.transistors, o.net, o.sink,
                            o.po);
        }
    };
    std::map<OpenKey, std::pair<double, std::string>> opens;
    const auto add_open = [&](OpenKey key, double w, std::string desc,
                              const std::string& cls) {
        if (w <= 0.0) return;
        auto [it, fresh] = opens.try_emplace(std::move(key),
                                             std::pair{0.0, std::move(desc)});
        it->second.first += w;
        (void)fresh;
        account(cls, w);
    };

    for (const FlatShape& s : flat) {
        double w = 0.0;
        std::string cls;
        if (conducting_layer(s.layer)) {
            const double density = stats.opens(s.layer);
            if (density <= 0.0) continue;
            const double len = static_cast<double>(
                std::max(s.rect.width(), s.rect.height()));
            const double wid = static_cast<double>(
                std::min(s.rect.width(), s.rect.height()));
            w = density * open_weight(len, wid, stats.x0);
            cls = std::string("open.") + cell::layer_name(s.layer);
        } else if (cut_layer(s.layer)) {
            w = stats.contact_open_density * static_cast<double>(s.rect.area());
            cls = "open.cut";
        } else {
            continue;
        }

        if (s.instance >= 0) {
            // Cell shape: semantics from its ShapeInfo tag.
            using OK = cell::ShapeInfo::OpenKind;
            if (s.info.open == OK::None) continue;
            OpenKey key{};
            key.net = netlist::kNoNet;
            key.sink = -1;
            key.po = -1;
            key.instance = s.instance;
            if (s.info.open == OK::TransistorDS) {
                const int t = s.info.t1 >= 0 ? s.info.t1 : s.info.t2;
                if (t < 0) continue;
                key.kind = ExtractedFault::Kind::TransistorOpen;
                key.transistors = {{s.instance, t}};
                add_open(std::move(key), w,
                         "open in instance " + std::to_string(s.instance) +
                             " transistor path",
                         cls);
            } else {
                key.kind = ExtractedFault::Kind::GateFloat;
                if (s.info.t1 >= 0)
                    key.transistors.push_back({s.instance, s.info.t1});
                if (s.info.t2 >= 0)
                    key.transistors.push_back({s.instance, s.info.t2});
                if (key.transistors.empty()) continue;
                add_open(std::move(key), w,
                         "floating gate in instance " +
                             std::to_string(s.instance),
                         cls);
            }
        } else if (s.route_sink != -3) {
            // Routing shape.
            const netlist::NetId net =
                static_cast<netlist::NetId>(s.net.index);
            OpenKey key{};
            key.instance = -1;
            key.po = -1;
            if (s.route_sink >= 0 &&
                chip.sinks[net][static_cast<size_t>(s.route_sink)]
                    .is_po_pad()) {
                key.kind = ExtractedFault::Kind::PoFloat;
                key.net = net;
                key.sink = -1;
                key.po = chip.sinks[net][static_cast<size_t>(s.route_sink)].pin;
                add_open(std::move(key), w,
                         "PO pad open on " +
                             chip.circuit.gate(net).name,
                         cls);
            } else {
                key.kind = ExtractedFault::Kind::NetOpen;
                key.net = net;
                key.sink = s.route_sink >= 0 ? s.route_sink : -1;
                add_open(std::move(key), w,
                         "routing open on " + chip.circuit.gate(net).name,
                         cls);
            }
        }
    }

    for (auto& [key, wd] : opens) {
        ExtractedFault fault;
        fault.kind = key.kind;
        fault.transistors = key.transistors;
        fault.net = key.net;
        fault.sink = key.sink;
        fault.po = key.po;
        fault.weight = wd.first;
        fault.description = std::move(wd.second);
        if (fault.weight >= options.min_weight)
            result.faults.push_back(std::move(fault));
    }

    return result;
}

}  // namespace dlp::extract
