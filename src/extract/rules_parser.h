// Text format for defect statistics, mirroring the paper's description of
// `lift`: "In the fault extraction rules file, geometrical rules for fault
// extraction are given for each defect type, as well as the statistical
// defect density and size distributions".
//
//   # comments and blank lines ignored
//   unit     1e-7          # density scale (defects per lambda^2)
//   x0       2.0           # minimum spot diameter (lambda)
//   short    metal1 10.0   # extra-material density, in units
//   open     metal1 1.0    # missing-material density, in units
//   contact_open 0.5
//   pinhole  0.4
//   sizebin  2 4 0.6      # optional measured size histogram: lo hi prob
//   cluster_alpha  2      # optional negative-binomial clustering shape
//   cluster_wafer  4      # or the hierarchical form: shared wafer shape,
//   cluster_die    2      # shared die shape, and a per-region density map
//   cluster_region 0.5 1  # (fraction alpha; repeatable, fractions sum to 1)
//
// Layer names follow cell::layer_name: ndiff pdiff poly metal1 metal2.
// `sizebin` is repeatable (one line per diameter band); bin overlap and
// normalization are validated by the lint layer, not here.  Likewise
// `cluster_region` is repeatable and its fraction normalization is lint's
// job; `cluster_alpha` is mutually exclusive with the hierarchical family.
#pragma once

#include <string>

#include "extract/defect_stats.h"

namespace dlp::extract {

/// Parses rules text; throws std::runtime_error with a line number on
/// malformed input.  Unmentioned densities stay zero.
DefectStatistics parse_defect_rules(const std::string& text);

/// Loads rules from a file.
DefectStatistics load_defect_rules(const std::string& path);

/// Serializes statistics back to rules text (round-trips with parse).
std::string to_rules(const DefectStatistics& stats);

}  // namespace dlp::extract
