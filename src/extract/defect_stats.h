// Spot-defect statistics: size distribution and per-layer densities.
//
// Defect diameters x follow the standard peaked density used in yield
// analysis (Stapper; Maly): p(x) = 2*x0^2 / x^3 for x >= x0, which makes
// the expected critical area of a parallel run of length L at spacing s
// integrate in closed form to L*x0^2/s (shorts) and L*x0^2/w (opens) - see
// critical_area.h.
//
// Densities are defects per lambda^2, in arbitrary but mutually consistent
// units (the paper scales total weight to a target yield anyway).  The
// default set follows the qualitative profile Maly reports for positive
// photoresist CMOS lines: metal bridging defects dominate.
#pragma once

#include <vector>

#include "cell/geom.h"
#include "model/defect_stats_model.h"

namespace dlp::extract {

struct DefectStatistics {
    double x0 = 2.0;  ///< minimum spot diameter (lambda)

    /// Optional measured refinement of the closed-form size density: one
    /// probability-mass bin per diameter band [lo, hi) in lambda.  Decks
    /// without bins use p(x) = 2*x0^2/x^3 everywhere.  Bins are validated
    /// by the lint layer (src/lint/checks.h): overlapping bins double-count
    /// a diameter band (`rules-overlapping-bins`) and a mass that does not
    /// sum to 1 is flagged (`rules-density-unnormalized`) — nothing here
    /// renormalizes.  `line` is the 1-based rules-file line for
    /// diagnostics (0 for in-memory decks).
    struct SizeBin {
        double lo = 0.0;
        double hi = 0.0;
        double prob = 0.0;
        int line = 0;
    };
    std::vector<SizeBin> size_bins;

    /// Extra-material (short) density per conducting layer.
    double short_density[cell::kLayerCount] = {};
    /// Missing-material (open) density per conducting layer.
    double open_density[cell::kLayerCount] = {};
    double contact_open_density = 0.0;  ///< per lambda^2 of cut area
    double pinhole_density = 0.0;       ///< gate-oxide, per lambda^2

    /// Clustered defect-count statistics for this deck (default Poisson,
    /// exactly the paper).  Decks opt in with the cluster_* directives:
    ///   cluster_alpha <a>             negative-binomial (Stapper) shape
    ///   cluster_wafer <a>             hierarchical shared wafer shape
    ///   cluster_die <a>               hierarchical shared die shape
    ///   cluster_region <frac> <a>     repeatable per-region density map
    /// cluster_alpha is mutually exclusive with the hierarchical forms.
    /// The statistics change only the DL/yield projections downstream
    /// (model/defect_stats_model.h), never critical areas or weights.
    /// Value sanity (fractions summing to 1, plausible shapes) is the
    /// lint layer's job (`rules-bad-clustering`).
    model::DefectStatsModel clustering;
    /// 1-based rules-file line of the first cluster_* directive, for lint
    /// diagnostics (0 for in-memory decks).
    int clustering_line = 0;

    double shorts(cell::Layer layer) const {
        return short_density[static_cast<size_t>(layer)];
    }
    double opens(cell::Layer layer) const {
        return open_density[static_cast<size_t>(layer)];
    }

    /// Bridging-dominant CMOS line (the paper's experimental situation).
    static DefectStatistics cmos_bridging_dominant();
    /// Open-dominant line (ablation: flips the susceptibility ordering).
    static DefectStatistics open_dominant();
    /// Uniform densities across mechanisms (ablation baseline).
    static DefectStatistics uniform();
};

}  // namespace dlp::extract
