// Monte-Carlo critical-area estimation: random spot defects (disks with
// diameters drawn from the x0^2/x^3 size density) are dropped on the
// flattened layout, and each one is classified the way a real defect would
// act - extra material shorting every net it touches, missing material
// breaking a wire it spans.  This provides an independent check of the
// closed-form weights the extractor computes (L*x0^2/s for shorts,
// L*x0^2/w for opens): the two must agree within sampling error.
//
// Estimator: for defect density D on a layer and a sampling window of area
// W, the weight of fault j is  w_j = D * W * P(defect causes j), with P
// estimated by the hit fraction.
#pragma once

#include <cstdint>
#include <map>

#include "extract/defect_stats.h"
#include "layout/chip.h"

namespace dlp::extract {

struct MonteCarloOptions {
    long samples_per_layer = 100000;  ///< per layer, per mechanism
    std::uint64_t seed = 1;
    double margin = 16.0;     ///< sampling window border around the die
    double max_diameter = 64.0;  ///< truncate the size distribution here
};

struct MonteCarloResult {
    long samples_per_layer = 0;
    /// Estimated total short (bridge) weight per layer.
    double short_weight[cell::kLayerCount] = {};
    /// Estimated total open weight per layer.
    double open_weight[cell::kLayerCount] = {};
    /// Estimated weight per bridged net set (pairs and triples+, keyed by
    /// the two smallest NetRefs involved).
    std::map<std::pair<cell::NetRef, cell::NetRef>, double> bridges;

    double total_short_weight() const;
    double total_open_weight() const;
};

MonteCarloResult estimate_critical_weights(
    const layout::ChipLayout& chip, const DefectStatistics& stats,
    const MonteCarloOptions& options = {});

}  // namespace dlp::extract
