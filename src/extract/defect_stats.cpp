#include "extract/defect_stats.h"

namespace dlp::extract {

namespace {

using cell::Layer;

// Base density unit: defects per lambda^2 of weighted critical area.  The
// 1e-7 scale puts per-fault weights in the 1e-9..1e-6 range the paper's
// fig. 3 histogram shows, and raw chip yields in a plausible band.
constexpr double kUnit = 1e-7;

void set(DefectStatistics& s, Layer layer, double shorts, double opens) {
    s.short_density[static_cast<size_t>(layer)] = shorts * kUnit;
    s.open_density[static_cast<size_t>(layer)] = opens * kUnit;
}

}  // namespace

DefectStatistics DefectStatistics::cmos_bridging_dominant() {
    DefectStatistics s;
    s.x0 = 2.0;
    // Relative densities (arbitrary units): metal layers dominate and
    // bridge far more often than they open; poly bridges matter inside
    // cells; diffusion defects are rarer.
    set(s, Layer::Metal1, 10.0, 1.0);
    set(s, Layer::Metal2, 8.0, 1.0);
    set(s, Layer::Poly, 5.0, 0.8);
    set(s, Layer::NDiff, 1.0, 0.3);
    set(s, Layer::PDiff, 1.0, 0.3);
    s.contact_open_density = 0.5 * kUnit;
    s.pinhole_density = 0.4 * kUnit;
    return s;
}

DefectStatistics DefectStatistics::open_dominant() {
    DefectStatistics s;
    s.x0 = 2.0;
    set(s, Layer::Metal1, 2.0, 10.0);
    set(s, Layer::Metal2, 2.0, 9.0);
    set(s, Layer::Poly, 1.5, 6.0);
    set(s, Layer::NDiff, 0.5, 1.5);
    set(s, Layer::PDiff, 0.5, 1.5);
    s.contact_open_density = 4.0 * kUnit;
    s.pinhole_density = 0.4 * kUnit;
    return s;
}

DefectStatistics DefectStatistics::uniform() {
    DefectStatistics s;
    s.x0 = 2.0;
    for (int l = 0; l < cell::kLayerCount; ++l) {
        s.short_density[l] = 2.0 * kUnit;
        s.open_density[l] = 2.0 * kUnit;
    }
    s.short_density[static_cast<size_t>(Layer::Contact)] = 0.0;
    s.short_density[static_cast<size_t>(Layer::Via)] = 0.0;
    s.open_density[static_cast<size_t>(Layer::Contact)] = 0.0;
    s.open_density[static_cast<size_t>(Layer::Via)] = 0.0;
    s.contact_open_density = 2.0 * kUnit;
    s.pinhole_density = 2.0 * kUnit;
    return s;
}

}  // namespace dlp::extract
