// Critical-area arithmetic for spot defects.
//
// For a defect of diameter x and two parallel wire edges of facing length L
// at spacing s, the short critical area is A(x) = L * (x - s) for x > s
// (the band of centers that touch both wires).  With the size density
// p(x) = 2*x0^2/x^3 (x >= x0), the expected weighted critical area is
//
//   E[A] = integral_s^inf L*(x-s) * 2*x0^2/x^3 dx = L * x0^2 / s     (s>=x0)
//
// and for s < x0 the integral from x0 gives L * (x0^2/s - ... ) which we
// conservatively cap at the s = x0 value.  Opens are the dual: a missing-
// material spot spanning wire width w over run length L gives L * x0^2 / w.
//
// A fault's weight is then w_j = D * E[A], the average number of inducing
// defects (paper eq. 4 discussion), so weights add and Y = exp(-sum w).
#pragma once

#include <cstdint>
#include <optional>

#include "cell/geom.h"

namespace dlp::extract {

/// Expected short weight (before density) for facing length L at spacing s.
double short_weight(double facing_length, double spacing, double x0);

/// Expected open weight (before density) for run length L at width w.
double open_weight(double run_length, double width, double x0);

/// Facing relation between two non-overlapping rectangles on one layer.
struct Facing {
    double length = 0.0;   ///< overlap of the facing edges
    double spacing = 0.0;  ///< gap between them
};

/// Returns the parallel-run facing of two rectangles, or nullopt if they
/// overlap/touch or face only diagonally.  `max_spacing` bounds the search
/// (defects beyond contribute negligibly).
std::optional<Facing> facing(const cell::Rect& a, const cell::Rect& b,
                             std::int64_t max_spacing);

}  // namespace dlp::extract
