// Layout fault extraction (the paper's `lift` role): walks the flattened
// layout, computes weighted critical areas per defect mechanism, and emits
// a list of realistic transistor-level faults, each with weight
// w_j = A_j * D_j (eq. 4 discussion: the mean number of inducing defects).
//
// Mechanisms:
//  * same-layer extra material  -> Bridge(netA, netB)      (parallel runs)
//  * gate-oxide pinhole         -> Bridge(gate net, channel drain net)
//  * missing material in a cell -> TransistorOpen / GateFloat per the
//    shape's ShapeInfo tag
//  * missing material / cut open in routing -> NetOpen (trunk: all sinks;
//    riser: one sink), or PoFloat for an output-pad branch
//  * contact/via opens          -> same mapping as their host shape
//
// Bridges between the two supply nets are classified Gross (they fail any
// test immediately) and kept only in the yield weight.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "extract/defect_stats.h"
#include "layout/chip.h"

namespace dlp::extract {

struct ExtractedFault {
    enum class Kind : std::uint8_t {
        Bridge,          ///< short between nets a and b
        TransistorOpen,  ///< source/drain path of listed transistors broken
        GateFloat,       ///< gates of listed transistors floating
        NetOpen,         ///< routing open on `net` (sink < 0: all sinks)
        PoFloat,         ///< PO pad/riser open, output ordinal `po`
        Gross,           ///< supply-to-supply short (kills the die outright)
    };
    Kind kind = Kind::Bridge;
    cell::NetRef a;  ///< Bridge endpoints
    cell::NetRef b;
    /// Third endpoint of a multi-node bridge (a large defect spanning three
    /// adjacent wires); NetRef::none() for ordinary two-net bridges.
    cell::NetRef c = cell::NetRef::none();
    std::vector<std::pair<std::int32_t, int>> transistors;  ///< (instance, local)
    netlist::NetId net = netlist::kNoNet;  ///< NetOpen
    int sink = -1;                         ///< NetOpen sink ordinal
    int po = -1;                           ///< PoFloat ordinal
    double weight = 0.0;
    std::string description;
};

struct ExtractOptions {
    std::int64_t max_bridge_spacing = 12;  ///< ignore farther pairs
    double min_weight = 0.0;               ///< drop lighter faults (0: keep all)
    /// Extract three-net bridges from defects spanning a wire and both of
    /// its neighbours (the paper's "bridging faults usually affect multiple
    /// nodes"); they are lighter (bigger defects) but easier to detect.
    bool multi_node_bridges = true;
};

struct ExtractionResult {
    std::vector<ExtractedFault> faults;
    double total_weight = 0.0;  ///< sum of all weights (incl. Gross)
    std::map<std::string, double> weight_by_class;  ///< mechanism breakdown

    double yield() const;  ///< e^{-total_weight}, eq (5)
    /// All fault weights (for the fig. 3 histogram).
    std::vector<double> weights() const;
};

ExtractionResult extract_faults(const layout::ChipLayout& chip,
                                const DefectStatistics& stats,
                                const ExtractOptions& options = {});

const char* fault_kind_name(ExtractedFault::Kind kind);

}  // namespace dlp::extract
