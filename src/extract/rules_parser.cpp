#include "extract/rules_parser.h"

#include <cctype>
#include <cmath>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>

namespace dlp::extract {

namespace {

std::optional<cell::Layer> layer_by_name(const std::string& name) {
    for (int li = 0; li < cell::kLayerCount; ++li) {
        const auto layer = static_cast<cell::Layer>(li);
        if (name == cell::layer_name(layer)) return layer;
    }
    return std::nullopt;
}

[[noreturn]] void fail(int line, const std::string& what) {
    throw std::runtime_error("rules:" + std::to_string(line) + ": " + what);
}

}  // namespace

DefectStatistics parse_defect_rules(const std::string& text) {
    DefectStatistics stats;
    stats.x0 = 2.0;
    double unit = 1.0;
    // Collect raw entries first so `unit` can appear anywhere.
    struct Entry {
        int line;
        std::string kind;
        std::string layer;
        double value;
    };
    std::vector<Entry> entries;

    std::istringstream in(text);
    std::string line_text;
    int line_no = 0;
    while (std::getline(in, line_text)) {
        ++line_no;
        const size_t hash = line_text.find('#');
        if (hash != std::string::npos) line_text.erase(hash);
        std::istringstream ls(line_text);
        std::string kind;
        if (!(ls >> kind)) continue;  // blank
        Entry e{line_no, kind, "", 0.0};
        if (kind == "sizebin") {
            // `sizebin <lo> <hi> <prob>`: repeatable, so it bypasses the
            // duplicate-directive check below.  Interval/overlap semantics
            // are the lint layer's job; the parser only rejects values no
            // deck could mean.
            DefectStatistics::SizeBin bin;
            if (!(ls >> bin.lo >> bin.hi >> bin.prob))
                fail(line_no, "expected 'sizebin <lo> <hi> <prob>'");
            std::string extra;
            if (ls >> extra) fail(line_no, "trailing token '" + extra + "'");
            if (!std::isfinite(bin.lo) || !std::isfinite(bin.hi) ||
                !std::isfinite(bin.prob))
                fail(line_no, "sizebin values must be finite");
            if (bin.hi <= bin.lo)
                fail(line_no, "sizebin needs lo < hi");
            if (bin.prob < 0.0)
                fail(line_no, "sizebin probability must be >= 0");
            bin.line = line_no;
            stats.size_bins.push_back(bin);
            continue;
        }
        if (kind == "short" || kind == "open") {
            if (!(ls >> e.layer >> e.value))
                fail(line_no, "expected '" + kind + " <layer> <density>'");
        } else if (kind == "unit" || kind == "x0" || kind == "pinhole" ||
                   kind == "contact_open") {
            if (!(ls >> e.value))
                fail(line_no, "expected '" + kind + " <value>'");
        } else {
            fail(line_no, "unknown directive '" + kind + "'");
        }
        std::string extra;
        if (ls >> extra) fail(line_no, "trailing token '" + extra + "'");
        if (!std::isfinite(e.value))
            fail(line_no, "value must be finite");
        entries.push_back(e);
    }

    // Every directive may appear once: a silently last-winning duplicate is
    // almost always a typo in a hand-edited rules file.
    {
        std::map<std::string, int> first_line;
        for (const Entry& e : entries) {
            const std::string key =
                e.layer.empty() ? e.kind : e.kind + " " + e.layer;
            const auto [it, inserted] = first_line.emplace(key, e.line);
            if (!inserted)
                fail(e.line, "duplicate '" + key + "' (first at line " +
                             std::to_string(it->second) + ")");
        }
    }

    for (const Entry& e : entries)
        if (e.kind == "unit") {
            if (!(e.value > 0.0)) fail(e.line, "unit must be > 0");
            unit = e.value;
        }
    for (const Entry& e : entries) {
        if (e.kind == "unit") continue;
        if (e.kind == "x0") {
            if (!(e.value > 0.0)) fail(e.line, "x0 must be > 0");
            stats.x0 = e.value;
            continue;
        }
        if (!(e.value >= 0.0)) fail(e.line, "density must be >= 0");
        if (e.kind == "pinhole") {
            stats.pinhole_density = e.value * unit;
        } else if (e.kind == "contact_open") {
            stats.contact_open_density = e.value * unit;
        } else {
            const auto layer = layer_by_name(e.layer);
            if (!layer) fail(e.line, "unknown layer '" + e.layer + "'");
            const auto li = static_cast<size_t>(*layer);
            if (e.kind == "short")
                stats.short_density[li] = e.value * unit;
            else
                stats.open_density[li] = e.value * unit;
        }
    }
    return stats;
}

DefectStatistics load_defect_rules(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot open " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return parse_defect_rules(buf.str());
}

std::string to_rules(const DefectStatistics& stats) {
    std::ostringstream out;
    out.precision(12);
    out << "# defect statistics (densities in defects per lambda^2)\n";
    out << "unit 1\n";
    out << "x0 " << stats.x0 << "\n";
    for (int li = 0; li < cell::kLayerCount; ++li) {
        const auto layer = static_cast<cell::Layer>(li);
        if (stats.short_density[li] > 0.0)
            out << "short " << cell::layer_name(layer) << " "
                << stats.short_density[li] << "\n";
        if (stats.open_density[li] > 0.0)
            out << "open " << cell::layer_name(layer) << " "
                << stats.open_density[li] << "\n";
    }
    if (stats.contact_open_density > 0.0)
        out << "contact_open " << stats.contact_open_density << "\n";
    if (stats.pinhole_density > 0.0)
        out << "pinhole " << stats.pinhole_density << "\n";
    for (const auto& bin : stats.size_bins)
        out << "sizebin " << bin.lo << " " << bin.hi << " " << bin.prob
            << "\n";
    return out.str();
}

}  // namespace dlp::extract
