#include "extract/rules_parser.h"

#include <cctype>
#include <cmath>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>

namespace dlp::extract {

namespace {

std::optional<cell::Layer> layer_by_name(const std::string& name) {
    for (int li = 0; li < cell::kLayerCount; ++li) {
        const auto layer = static_cast<cell::Layer>(li);
        if (name == cell::layer_name(layer)) return layer;
    }
    return std::nullopt;
}

[[noreturn]] void fail(int line, const std::string& what) {
    throw std::runtime_error("rules:" + std::to_string(line) + ": " + what);
}

}  // namespace

DefectStatistics parse_defect_rules(const std::string& text) {
    DefectStatistics stats;
    stats.x0 = 2.0;
    double unit = 1.0;
    double cluster_alpha = 0.0;  // plain negbin shape, 0 = not given
    // Collect raw entries first so `unit` can appear anywhere.
    struct Entry {
        int line;
        std::string kind;
        std::string layer;
        double value;
    };
    std::vector<Entry> entries;

    std::istringstream in(text);
    std::string line_text;
    int line_no = 0;
    while (std::getline(in, line_text)) {
        ++line_no;
        const size_t hash = line_text.find('#');
        if (hash != std::string::npos) line_text.erase(hash);
        std::istringstream ls(line_text);
        std::string kind;
        if (!(ls >> kind)) continue;  // blank
        Entry e{line_no, kind, "", 0.0};
        if (kind == "sizebin") {
            // `sizebin <lo> <hi> <prob>`: repeatable, so it bypasses the
            // duplicate-directive check below.  Interval/overlap semantics
            // are the lint layer's job; the parser only rejects values no
            // deck could mean.
            DefectStatistics::SizeBin bin;
            if (!(ls >> bin.lo >> bin.hi >> bin.prob))
                fail(line_no, "expected 'sizebin <lo> <hi> <prob>'");
            std::string extra;
            if (ls >> extra) fail(line_no, "trailing token '" + extra + "'");
            if (!std::isfinite(bin.lo) || !std::isfinite(bin.hi) ||
                !std::isfinite(bin.prob))
                fail(line_no, "sizebin values must be finite");
            if (bin.hi <= bin.lo)
                fail(line_no, "sizebin needs lo < hi");
            if (bin.prob < 0.0)
                fail(line_no, "sizebin probability must be >= 0");
            bin.line = line_no;
            stats.size_bins.push_back(bin);
            continue;
        }
        if (kind == "cluster_region") {
            // `cluster_region <fraction> <alpha>`: repeatable like sizebin.
            // Fraction normalization is the lint layer's job; the parser
            // only rejects values no deck could mean.
            model::RegionDensity region;
            if (!(ls >> region.fraction >> region.alpha))
                fail(line_no, "expected 'cluster_region <fraction> <alpha>'");
            std::string extra;
            if (ls >> extra) fail(line_no, "trailing token '" + extra + "'");
            if (!std::isfinite(region.fraction) ||
                !std::isfinite(region.alpha))
                fail(line_no, "cluster_region values must be finite");
            if (!(region.fraction > 0.0))
                fail(line_no, "cluster_region fraction must be > 0");
            if (region.alpha < 0.0)
                fail(line_no, "cluster_region alpha must be >= 0");
            stats.clustering.regions.push_back(region);
            if (stats.clustering_line == 0) stats.clustering_line = line_no;
            continue;
        }
        if (kind == "short" || kind == "open") {
            if (!(ls >> e.layer >> e.value))
                fail(line_no, "expected '" + kind + " <layer> <density>'");
        } else if (kind == "unit" || kind == "x0" || kind == "pinhole" ||
                   kind == "contact_open" || kind == "cluster_alpha" ||
                   kind == "cluster_wafer" || kind == "cluster_die") {
            if (!(ls >> e.value))
                fail(line_no, "expected '" + kind + " <value>'");
        } else {
            fail(line_no, "unknown directive '" + kind + "'");
        }
        std::string extra;
        if (ls >> extra) fail(line_no, "trailing token '" + extra + "'");
        if (!std::isfinite(e.value))
            fail(line_no, "value must be finite");
        entries.push_back(e);
    }

    // Every directive may appear once: a silently last-winning duplicate is
    // almost always a typo in a hand-edited rules file.
    {
        std::map<std::string, int> first_line;
        for (const Entry& e : entries) {
            const std::string key =
                e.layer.empty() ? e.kind : e.kind + " " + e.layer;
            const auto [it, inserted] = first_line.emplace(key, e.line);
            if (!inserted)
                fail(e.line, "duplicate '" + key + "' (first at line " +
                             std::to_string(it->second) + ")");
        }
    }

    for (const Entry& e : entries)
        if (e.kind == "unit") {
            if (!(e.value > 0.0)) fail(e.line, "unit must be > 0");
            unit = e.value;
        }
    for (const Entry& e : entries) {
        if (e.kind == "unit") continue;
        if (e.kind == "x0") {
            if (!(e.value > 0.0)) fail(e.line, "x0 must be > 0");
            stats.x0 = e.value;
            continue;
        }
        if (e.kind == "cluster_alpha" || e.kind == "cluster_wafer" ||
            e.kind == "cluster_die") {
            // Clustering shapes are dimensionless: `unit` does not apply.
            if (!(e.value > 0.0)) fail(e.line, e.kind + " must be > 0");
            if (e.kind == "cluster_alpha")
                cluster_alpha = e.value;
            else if (e.kind == "cluster_wafer")
                stats.clustering.wafer_alpha = e.value;
            else
                stats.clustering.die_alpha = e.value;
            if (stats.clustering_line == 0 ||
                e.line < stats.clustering_line)
                stats.clustering_line = e.line;
            continue;
        }
        if (!(e.value >= 0.0)) fail(e.line, "density must be >= 0");
        if (e.kind == "pinhole") {
            stats.pinhole_density = e.value * unit;
        } else if (e.kind == "contact_open") {
            stats.contact_open_density = e.value * unit;
        } else {
            const auto layer = layer_by_name(e.layer);
            if (!layer) fail(e.line, "unknown layer '" + e.layer + "'");
            const auto li = static_cast<size_t>(*layer);
            if (e.kind == "short")
                stats.short_density[li] = e.value * unit;
            else
                stats.open_density[li] = e.value * unit;
        }
    }

    // Compose the clustering backend.  cluster_alpha is the flat
    // negative-binomial form; any of cluster_wafer / cluster_die /
    // cluster_region selects the hierarchical form, and mixing the two
    // families is a structural contradiction the parser rejects.
    const bool hierarchical = stats.clustering.wafer_alpha > 0.0 ||
                              stats.clustering.die_alpha > 0.0 ||
                              !stats.clustering.regions.empty();
    if (cluster_alpha > 0.0 && hierarchical)
        fail(stats.clustering_line,
             "cluster_alpha cannot be combined with cluster_wafer / "
             "cluster_die / cluster_region");
    if (cluster_alpha > 0.0) {
        stats.clustering.kind = model::DefectStatsModel::Kind::NegBin;
        stats.clustering.alpha = cluster_alpha;
    } else if (hierarchical) {
        stats.clustering.kind = model::DefectStatsModel::Kind::Hierarchical;
    }
    return stats;
}

DefectStatistics load_defect_rules(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot open " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return parse_defect_rules(buf.str());
}

std::string to_rules(const DefectStatistics& stats) {
    std::ostringstream out;
    out.precision(12);
    out << "# defect statistics (densities in defects per lambda^2)\n";
    out << "unit 1\n";
    out << "x0 " << stats.x0 << "\n";
    for (int li = 0; li < cell::kLayerCount; ++li) {
        const auto layer = static_cast<cell::Layer>(li);
        if (stats.short_density[li] > 0.0)
            out << "short " << cell::layer_name(layer) << " "
                << stats.short_density[li] << "\n";
        if (stats.open_density[li] > 0.0)
            out << "open " << cell::layer_name(layer) << " "
                << stats.open_density[li] << "\n";
    }
    if (stats.contact_open_density > 0.0)
        out << "contact_open " << stats.contact_open_density << "\n";
    if (stats.pinhole_density > 0.0)
        out << "pinhole " << stats.pinhole_density << "\n";
    for (const auto& bin : stats.size_bins)
        out << "sizebin " << bin.lo << " " << bin.hi << " " << bin.prob
            << "\n";
    // Clustering directives serialize only when the deck opted in, so the
    // canonical text (and thus rules_hash) of every Poisson deck is
    // byte-identical to what it was before clustering existed.
    if (stats.clustering.kind == model::DefectStatsModel::Kind::NegBin) {
        out << "cluster_alpha " << stats.clustering.alpha << "\n";
    } else if (stats.clustering.kind ==
               model::DefectStatsModel::Kind::Hierarchical) {
        if (stats.clustering.wafer_alpha > 0.0)
            out << "cluster_wafer " << stats.clustering.wafer_alpha << "\n";
        if (stats.clustering.die_alpha > 0.0)
            out << "cluster_die " << stats.clustering.die_alpha << "\n";
        for (const auto& region : stats.clustering.regions)
            out << "cluster_region " << region.fraction << " "
                << region.alpha << "\n";
    }
    return out.str();
}

}  // namespace dlp::extract
